"""Cost-driven global mapping search (paper Sec. III-A, generalized).

The rule-based selector picks each layer's target locally from its
weight dtype. This engine instead treats mapping as a *global*
optimization problem over the whole network:

1. :func:`~repro.mapping.candidates.enumerate_sites` prices every
   (composite, target) option with the runtime cycle and energy models
   (tilings solved through the :class:`~repro.core.cache.TilingCache`),
2. inter-layer *transfer penalties* charge the DMA + layout-conversion
   cost of handing activations between cores
   (:func:`~repro.soc.dma.cross_core_transfer_cycles`),
3. a search minimizes the selected objective over all assignments:
   exact dynamic programming when the layer-coupling graph is a linear
   chain, beam search for branching graphs (residual networks), with
   the rule-based assignment kept as a safety net so a cost-driven
   mapping is never worse than the rules under its own objective.

Objectives are scalarizations of (latency cycles, energy pJ):
``"latency"`` and ``"energy"`` are the two extremes of ``"weighted"``,
whose ``weight`` in [0, 1] interpolates between them (energy is
expressed in CPU-cycle equivalents, pJ / ``cpu_pj_per_cycle``, so the
two terms share a scale). Sweeping the weight traces the
latency/energy Pareto front (:mod:`repro.eval.mapping_dse`).

Selected via ``CompilerConfig.mapping_strategy``:

* ``"rules"`` (default) — the seed weight-dtype policy, bit-exact with
  the historical dispatcher (no candidate enumeration at all),
* ``"greedy"`` — per-layer cheapest feasible candidate, transfers
  ignored (a useful lower bound on how much coupling matters),
* ``"dp"`` — the global search described above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DispatchError
from ..ir import Graph
from ..patterns import default_specs, partition
from ..soc.dma import cross_core_transfer_cycles, cross_core_transfer_legs
from ..soc.energy import DEFAULT_ENERGY, EnergyParams
from ..transforms import (
    Pass, PassManager, canonicalize, eliminate_dead_code, fold_constants,
)
from .candidates import MappingSite, chain_candidate, enumerate_sites
from .rules import DispatchDecision
from .selector import assign_targets, retarget_composites, rules_target

#: selectable mapping strategies (``CompilerConfig.mapping_strategy``).
STRATEGIES = ("rules", "greedy", "dp")
#: selectable objectives (``CompilerConfig.mapping_objective``).
OBJECTIVES = ("latency", "energy", "weighted")

_INF = float("inf")


@dataclass(frozen=True)
class Objective:
    """A linear scalarization of (latency cycles, energy pJ).

    ``weight`` = 0 is pure latency, 1 is pure energy; energy is scaled
    by ``pj_per_cycle`` (the CPU's energy per cycle) so both terms are
    in comparable cycle units and the scalarization stays additive —
    which is what lets the DP/beam searches optimize it exactly.
    """

    name: str
    weight: float
    pj_per_cycle: float = DEFAULT_ENERGY.cpu_pj_per_cycle

    def scalar(self, cycles: float, energy_pj: float) -> float:
        return ((1.0 - self.weight) * cycles
                + self.weight * energy_pj / self.pj_per_cycle)


def make_objective(name: str, weight: float = 0.5,
                   energy: EnergyParams = DEFAULT_ENERGY) -> Objective:
    """Build the :class:`Objective` one config selects."""
    if name == "latency":
        weight = 0.0
    elif name == "energy":
        weight = 1.0
    elif name != "weighted":
        raise DispatchError(
            f"unknown mapping objective {name!r}; expected one of {OBJECTIVES}")
    if not 0.0 <= weight <= 1.0:
        raise DispatchError(f"mapping weight {weight} outside [0, 1]")
    return Objective(name=name, weight=weight,
                     pj_per_cycle=energy.cpu_pj_per_cycle)


@dataclass(frozen=True)
class TransferEdge:
    """One activation hand-off whose cost depends on the assignment.

    ``src``/``dst`` are site indices; ``None`` marks a fixed CPU
    endpoint (graph inputs, unmatched ops between composites, the
    network output consumed by the host).
    """

    src: Optional[int]
    dst: Optional[int]
    nbytes: int


def transfer_penalty(src_target: str, dst_target: str, nbytes: int,
                     params, energy: EnergyParams = DEFAULT_ENERGY
                     ) -> Tuple[float, float]:
    """(cycles, pJ) of moving one activation tensor between targets."""
    cycles = cross_core_transfer_cycles(nbytes, src_target, dst_target, params)
    if cycles == 0.0:
        return 0.0, 0.0
    legs = cross_core_transfer_legs(src_target, dst_target)
    pj = (legs * nbytes * energy.dma_pj_per_byte
          + nbytes * params.cpu_cycles_per_elem_copy * energy.host_pj_per_cycle)
    return cycles, pj


def build_edges(graph: Graph, sites: List[MappingSite]) -> List[TransferEdge]:
    """All assignment-dependent activation hand-offs of one graph."""
    site_of: Dict[int, int] = {s.node_id: s.index for s in sites}
    comps = {c.node_id: c for c in graph.composites()}
    edges: List[TransferEdge] = []
    for site in sites:
        comp = comps[site.node_id]
        for inp in comp.inputs:
            edges.append(TransferEdge(
                src=site_of.get(inp.node_id), dst=site.index,
                nbytes=inp.ttype.storage_bytes))
    users = graph.users()
    for site in sites:
        consumers = users.get(site.node_id, [])
        external = (graph.output.node_id == site.node_id
                    or any(u.node_id not in site_of for u in consumers))
        if external:
            edges.append(TransferEdge(src=site.index, dst=None,
                                      nbytes=site.out_bytes))
    return edges


@dataclass
class MappingPlan:
    """The outcome of one mapping search over one partitioned graph."""

    strategy: str
    objective: Objective
    sites: List[MappingSite]
    edges: List[TransferEdge]
    assignment: List[str]                 #: per-site chosen target
    decisions: List[DispatchDecision]
    total_cycles: float = 0.0             #: modeled latency incl. transfers
    total_energy_pj: float = 0.0
    total_cost: float = 0.0               #: scalarized objective value
    transfer_cycles: float = 0.0          #: transfer share of total_cycles
    baseline_assignment: List[str] = field(default_factory=list)
    baseline_cycles: float = 0.0          #: rules strategy, same objective
    baseline_energy_pj: float = 0.0
    baseline_cost: float = 0.0
    #: priced depth-first fused-chain alternatives (one record per
    #: fusable conv chain; populated when ``config.depthfirst != "off"``)
    depthfirst: List[Dict] = field(default_factory=list)

    @property
    def target_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.assignment:
            out[t] = out.get(t, 0) + 1
        return out

    @property
    def signature(self) -> Tuple[str, ...]:
        """Hashable identity of the assignment (for Pareto dedup)."""
        return tuple(self.assignment)


# ---------------------------------------------------------------------------
# cost evaluation
# ---------------------------------------------------------------------------


def _node_cost(site: MappingSite, target: str,
               objective: Objective) -> Tuple[float, float, float]:
    """(cycles, pJ, scalar) of running one site on one target."""
    cand = site.candidates.get(target)
    if cand is None or not cand.feasible:
        return _INF, _INF, _INF
    return (cand.latency_cycles, cand.energy_pj,
            objective.scalar(cand.latency_cycles, cand.energy_pj))


def evaluate_assignment(sites: List[MappingSite], edges: List[TransferEdge],
                        assignment: List[str], soc, objective: Objective,
                        energy: EnergyParams = DEFAULT_ENERGY
                        ) -> Tuple[float, float, float, float]:
    """(cycles, pJ, scalar cost, transfer cycles) of a full assignment."""
    cycles = pj = transfer = 0.0
    for site, target in zip(sites, assignment):
        c, e, _ = _node_cost(site, target, objective)
        cycles += c
        pj += e
    for edge in edges:
        src = "cpu" if edge.src is None else assignment[edge.src]
        dst = "cpu" if edge.dst is None else assignment[edge.dst]
        tc, te = transfer_penalty(src, dst, edge.nbytes, soc.params, energy)
        cycles += tc
        pj += te
        transfer += tc
    return cycles, pj, objective.scalar(cycles, pj), transfer


# ---------------------------------------------------------------------------
# searches
# ---------------------------------------------------------------------------


def _rules_assignment(sites: List[MappingSite],
                      soc=None) -> List[str]:
    """The seed weight-dtype policy, as a per-site target list.

    Delegates to :func:`~repro.mapping.selector.rules_target` — the
    same function :func:`~repro.mapping.selector.assign_targets` uses —
    so the baseline here (and the CI drift gate built on it) cannot
    diverge from what ``mapping_strategy="rules"`` compiles. A
    registered platform's own ``prefer`` hook takes the same precedence
    it has in ``assign_targets``.
    """
    prefer = getattr(soc, "prefer", None) if soc is not None else None
    if prefer is None:
        return [rules_target(site.spec, site.accepted_targets)
                for site in sites]
    return [prefer(site.spec, site.accepted_targets)
            if site.spec is not None and site.accepted_targets else "cpu"
            for site in sites]


def _greedy_assignment(sites: List[MappingSite],
                       objective: Objective) -> List[str]:
    """Cheapest feasible candidate per site, transfers ignored."""
    out = []
    for site in sites:
        best = min(site.candidates,
                   key=lambda t: (_node_cost(site, t, objective)[2], t))
        out.append(best)
    return out


def _site_edges(edges: List[TransferEdge]) -> List[TransferEdge]:
    return [e for e in edges if e.src is not None and e.dst is not None]


def _fixed_costs(sites: List[MappingSite], edges: List[TransferEdge],
                 soc, objective: Objective, energy: EnergyParams):
    """Per-(site, target) scalar cost incl. fixed-CPU-endpoint edges."""
    extra: Dict[int, List[Tuple[bool, int]]] = {i: [] for i in
                                                range(len(sites))}
    for e in edges:
        if e.src is None and e.dst is not None:
            extra[e.dst].append((True, e.nbytes))
        elif e.dst is None and e.src is not None:
            extra[e.src].append((False, e.nbytes))

    def cost(i: int, target: str) -> float:
        c, e_pj, scalar = _node_cost(sites[i], target, objective)
        if scalar == _INF:
            return _INF
        for incoming, nbytes in extra[i]:
            tc, te = transfer_penalty(
                "cpu" if incoming else target,
                target if incoming else "cpu",
                nbytes, soc.params, energy)
            scalar += objective.scalar(tc, te)
        return scalar

    return cost


def _is_linear(sites: List[MappingSite],
               coupling: List[TransferEdge]) -> bool:
    """True when every site has <= 1 coupled predecessor and successor."""
    preds = {i: 0 for i in range(len(sites))}
    succs = {i: 0 for i in range(len(sites))}
    for e in coupling:
        succs[e.src] += 1
        preds[e.dst] += 1
    return all(p <= 1 for p in preds.values()) and all(
        s <= 1 for s in succs.values())


def _chain_dp(sites, coupling, node_cost, soc, objective, energy):
    """Exact DP over path components of the coupling graph.

    ``f[t]`` is the best cost of the prefix of one chain ending with
    the current site on target ``t``; edges contribute the transfer
    penalty between consecutive targets. Disconnected components are
    independent, so each chain is solved separately.
    """
    succ = {e.src: e for e in coupling}
    pred = {e.dst: e for e in coupling}
    assignment: List[Optional[str]] = [None] * len(sites)
    for start in range(len(sites)):
        if start in pred or assignment[start] is not None:
            continue
        # walk the chain
        chain = [start]
        while chain[-1] in succ:
            chain.append(succ[chain[-1]].dst)
        frontier: Dict[str, Tuple[float, List[str]]] = {
            t: (node_cost(start, t), [t])
            for t in sites[start].candidates}
        for i in chain[1:]:
            edge = pred[i]
            nxt: Dict[str, Tuple[float, List[str]]] = {}
            for t in sites[i].candidates:
                base = node_cost(i, t)
                best = None
                for prev_t, (prev_cost, prev_path) in frontier.items():
                    tc, te = transfer_penalty(prev_t, t, edge.nbytes,
                                              soc.params, energy)
                    total = prev_cost + base + objective.scalar(tc, te)
                    if best is None or total < best[0] or (
                            total == best[0] and prev_path < best[1]):
                        best = (total, prev_path)
                nxt[t] = (best[0], best[1] + [t])
            frontier = nxt
        _, path = min(frontier.values(),
                      key=lambda item: (item[0], item[1]))
        for i, t in zip(chain, path):
            assignment[i] = t
    return assignment


def _beam_search(sites, coupling, node_cost, soc, objective, energy,
                 beam_width: int):
    """Topological-order beam search for branching coupling graphs.

    Sites are expanded in topological order, so every coupled
    predecessor of the next site is already assigned in each beam
    entry; ties break lexicographically for determinism.
    """
    preds: Dict[int, List[TransferEdge]] = {}
    for e in coupling:
        preds.setdefault(e.dst, []).append(e)
    beam: List[Tuple[float, List[str]]] = [(0.0, [])]
    for i, site in enumerate(sites):
        expanded: List[Tuple[float, List[str]]] = []
        for cost_so_far, assigned in beam:
            for t in site.candidates:
                total = cost_so_far + node_cost(i, t)
                for e in preds.get(i, []):
                    tc, te = transfer_penalty(assigned[e.src], t, e.nbytes,
                                              soc.params, energy)
                    total += objective.scalar(tc, te)
                expanded.append((total, assigned + [t]))
        expanded.sort(key=lambda item: (item[0], item[1]))
        beam = expanded[:max(1, beam_width)]
    return beam[0][1]


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def prepare_graph(graph: Graph) -> Graph:
    """Frontend passes + BYOC partitioning, as ``compile_model`` runs them.

    Lets the mapping engine analyze a model without compiling it (the
    ``repro map`` decision table, the Pareto sweep).
    """
    pm = PassManager([
        Pass("canonicalize", canonicalize),
        Pass("fold_constants", fold_constants),
        Pass("dead_code", eliminate_dead_code),
    ])
    return partition(pm.run(graph), default_specs())


def _decisions_for(sites: List[MappingSite], assignment: List[str],
                   objective: Objective) -> List[DispatchDecision]:
    decisions = []
    for site, target in zip(sites, assignment):
        rejections = {n: r for n, r in site.eligibility.items() if r}
        rejections.update({n: c.reason for n, c in site.rejected.items()})
        costs = {t: _node_cost(site, t, objective)[2]
                 for t in site.candidates}
        decisions.append(DispatchDecision(
            layer_name=site.layer_name, pattern=site.pattern, target=target,
            candidates=site.accepted_targets, rejections=rejections,
            spec_error=site.spec_error, costs=costs,
            chosen_cost=costs.get(target),
        ))
    return decisions


def _depthfirst_alternatives(pgraph: Graph, sites: List[MappingSite],
                             assignment: List[str], soc, config, cache,
                             energy: EnergyParams) -> List[Dict]:
    """Price fusable conv chains as additional mapping alternatives.

    Chains are segmented with the same greedy longest-admissible split
    the compiler's planner uses (:data:`MAX_CHAIN_LEN` cap) and the
    same input-held profitability test, so the priced segments track
    what compilation would adopt — up to residual-closing ``add``
    steps, which only exist at the step level. Each record compares
    the fused depth-first cost (same cost model the executor replays)
    against the sum of the segment layers' chosen unfused candidates,
    for the `repro map` decision table.
    """
    from ..extensions.depthfirst import (
        MAX_CHAIN_LEN, conv_chains_from_graph, plan_chain_grid,
    )

    users = pgraph.users()
    comps = {c.node_id: c for c in pgraph.composites()}
    by_name = {site.layer_name: i for i, site in enumerate(sites)}
    budget = soc.params.l2_bytes
    out: List[Dict] = []
    for chain in conv_chains_from_graph(pgraph):
        idxs = [by_name.get(s.name) for s in chain]
        if any(i is None for i in idxs):
            continue
        i = 0
        while i < len(chain) - 1:
            comp = comps[sites[idxs[i]].node_id]
            held = any(len(users.get(inp.node_id, ())) > 1
                       for inp in comp.inputs)
            segment = None
            for length in range(min(len(chain) - i, MAX_CHAIN_LEN), 1, -1):
                if plan_chain_grid(chain[i:i + length], budget, mode="on",
                                   input_held=held) is not None:
                    segment = length
                    break
            if segment is None:
                i += 1
                continue
            specs = chain[i:i + segment]
            seg_idxs = idxs[i:i + segment]
            targets = [assignment[j] for j in seg_idxs]
            if any(t == "cpu" for t in targets):
                i += segment
                continue  # a CPU layer breaks the accelerator chain
            cand = chain_candidate(specs, targets, soc, config, cache,
                                   budget_bytes=budget, input_held=held,
                                   energy=energy)
            unfused = sum(
                sites[j].candidates[t].latency_cycles
                for j, t in zip(seg_idxs, targets)
                if t in sites[j].candidates)
            out.append({
                "layers": [s.name for s in specs],
                "targets": targets,
                "feasible": cand.feasible,
                "reason": cand.reason,
                "latency_cycles": cand.latency_cycles,
                "unfused_cycles": unfused,
            })
            i += segment
    return out


def analyze_mapping(pgraph: Graph, soc, config, cache=None,
                    strategy: Optional[str] = None,
                    objective: Optional[Objective] = None,
                    energy: EnergyParams = DEFAULT_ENERGY) -> MappingPlan:
    """Run one mapping search over an already-partitioned graph.

    ``strategy``/``objective`` default to the config's; the returned
    plan also carries the rules baseline evaluated under the *same*
    objective, so cost-driven strategies can be compared against the
    seed policy apples to apples.
    """
    strategy = strategy or config.mapping_strategy
    if strategy not in STRATEGIES:
        raise DispatchError(
            f"unknown mapping strategy {strategy!r}; "
            f"expected one of {STRATEGIES}")
    if objective is None:
        objective = make_objective(config.mapping_objective,
                                   config.mapping_weight, energy)
    if cache is None and config.tiling_cache:
        from ..core.cache import get_default_cache  # avoid an import cycle
        cache = get_default_cache()

    from ..obs.trace import trace_span

    with trace_span("mapping.enumerate_sites", category="compile"):
        sites = enumerate_sites(pgraph, soc, config, cache, energy)
    edges = build_edges(pgraph, sites)
    baseline = _rules_assignment(sites, soc)

    with trace_span("mapping.search", category="compile",
                    strategy=strategy, sites=len(sites)):
        if strategy == "rules":
            assignment = list(baseline)
        elif strategy == "greedy":
            assignment = _greedy_assignment(sites, objective)
        else:  # "dp"
            coupling = _site_edges(edges)
            node_cost = _fixed_costs(sites, edges, soc, objective, energy)
            if _is_linear(sites, coupling):
                assignment = _chain_dp(sites, coupling, node_cost, soc,
                                       objective, energy)
            else:
                assignment = _beam_search(sites, coupling, node_cost, soc,
                                          objective, energy,
                                          config.mapping_beam_width)
            # safety net: never worse than the seed policy under the same
            # objective (beam search carries no optimality guarantee)
            best = evaluate_assignment(sites, edges, assignment, soc,
                                       objective, energy)[2]
            base = evaluate_assignment(sites, edges, baseline, soc,
                                       objective, energy)[2]
            if base < best:
                assignment = list(baseline)

    cycles, pj, cost, transfer = evaluate_assignment(
        sites, edges, assignment, soc, objective, energy)
    b_cycles, b_pj, b_cost, _ = evaluate_assignment(
        sites, edges, baseline, soc, objective, energy)
    depthfirst = ([] if config.depthfirst == "off" else
                  _depthfirst_alternatives(pgraph, sites, assignment, soc,
                                           config, cache, energy))
    return MappingPlan(
        strategy=strategy, objective=objective, sites=sites, edges=edges,
        assignment=assignment,
        decisions=_decisions_for(sites, assignment, objective),
        total_cycles=cycles, total_energy_pj=pj, total_cost=cost,
        transfer_cycles=transfer,
        baseline_assignment=baseline, baseline_cycles=b_cycles,
        baseline_energy_pj=b_pj, baseline_cost=b_cost,
        depthfirst=depthfirst,
    )


def plan_mapping(graph: Graph, soc, config, cache=None):
    """Assign a target to every composite of a partitioned graph.

    The dispatcher entry point :func:`~repro.core.compiler.compile_model`
    calls. ``mapping_strategy="rules"`` takes the historical rule-based
    path verbatim (no candidate enumeration, bit-exact with the seed
    dispatcher); cost-driven strategies run the full engine.

    Returns ``(retargeted_graph, decisions)``.
    """
    strategy = config.mapping_strategy
    if strategy not in STRATEGIES:
        raise DispatchError(
            f"unknown mapping strategy {strategy!r}; "
            f"expected one of {STRATEGIES}")
    if strategy == "rules":
        return assign_targets(graph, soc)
    plan = analyze_mapping(graph, soc, config, cache)
    target_of = {site.node_id: target
                 for site, target in zip(plan.sites, plan.assignment)}
    return retarget_composites(graph, target_of), plan.decisions


def format_plan(plan: MappingPlan) -> str:
    """Human-readable decision table + totals for ``repro map``."""
    from .selector import dispatch_summary

    lines = [dispatch_summary(plan.decisions), ""]
    counts = ", ".join(f"{t}: {n}" for t, n in
                       sorted(plan.target_counts.items()))
    lines.append(f"strategy={plan.strategy} objective={plan.objective.name}"
                 f" (weight={plan.objective.weight:.2f})  layers: {counts}")
    lines.append(
        f"modeled total : {plan.total_cycles:12.0f} cycles "
        f"({plan.transfer_cycles:.0f} in transfers), "
        f"{plan.total_energy_pj / 1e6:10.2f} uJ, cost {plan.total_cost:.0f}")
    lines.append(
        f"rules baseline: {plan.baseline_cycles:12.0f} cycles, "
        f"{plan.baseline_energy_pj / 1e6:10.2f} uJ, "
        f"cost {plan.baseline_cost:.0f}")
    if plan.baseline_cost > 0 and plan.total_cost < _INF:
        lines.append(f"cost vs rules : "
                     f"{plan.total_cost / plan.baseline_cost:.3f}x")
    if plan.depthfirst:
        lines.append("")
        lines.append("depth-first fused-chain alternatives:")
        for rec in plan.depthfirst:
            span = f"{rec['layers'][0]}..{rec['layers'][-1]}"
            if not rec["feasible"]:
                lines.append(f"  {span:<36} infeasible ({rec['reason']})")
                continue
            ratio = (rec["latency_cycles"] / rec["unfused_cycles"]
                     if rec["unfused_cycles"] else float("inf"))
            lines.append(
                f"  {span:<36} {rec['latency_cycles']:12.0f} cycles fused "
                f"vs {rec['unfused_cycles']:12.0f} unfused "
                f"({ratio:.2f}x)")
    return "\n".join(lines)
