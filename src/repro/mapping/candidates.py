"""Candidate enumeration: every place one composite could run, costed.

For each dispatchable composite the engine considers all rule-accepted
accelerators *plus the CPU fallback*, and prices each candidate with
the same models the simulator charges at runtime:

* accelerator candidates — solve the DORY tiling for that target
  (through the :class:`~repro.core.cache.TilingCache`, so repeated
  geometries and re-planning are nearly free), then replay the exact
  per-tile cycle model (:func:`~repro.runtime.cost.cost_layer`) and the
  per-kernel energy model (:func:`~repro.soc.energy.kernel_energy_pj`);
  an infeasible tiling disqualifies the candidate with its reason,
* the CPU candidate — the fused-kernel cycle model the executor charges
  for ``CpuKernelStep``s (:meth:`~repro.soc.cpu.CpuModel.kernel_cycles`
  plus the runtime call overhead).

Because both paths reuse the runtime cost models verbatim, a mapping's
modeled per-layer latency equals the executor's measured kernel cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dory.heuristics import heuristic_set_for
from ..dory.layer_spec import LayerSpec
from ..dory.tiler import DoryTiler
from ..errors import TilingError
from ..ir import Composite, Graph
from ..runtime.cost import cost_layer
from ..soc.energy import DEFAULT_ENERGY, EnergyParams, kernel_energy_pj
from .rules import dispatchable_layers


@dataclass
class CandidateCost:
    """One (composite, target) option and its modeled cost."""

    target: str
    latency_cycles: float = float("inf")
    energy_pj: float = float("inf")
    feasible: bool = True
    reason: str = ""  #: why the candidate is unusable ("" when feasible)


@dataclass
class MappingSite:
    """One dispatchable composite and everything known about it."""

    index: int                 #: position among dispatchable composites
    node_id: int               #: composite node id in the partitioned graph
    layer_name: str
    pattern: str
    spec: Optional[LayerSpec]
    spec_error: str            #: why no LayerSpec ("" when spec is set)
    eligibility: Dict[str, str]
    out_bytes: int             #: activation bytes the composite produces
    candidates: Dict[str, CandidateCost] = field(default_factory=dict)
    rejected: Dict[str, CandidateCost] = field(default_factory=dict)

    @property
    def accepted_targets(self) -> List[str]:
        """Rule-accepted accelerator names (CPU excluded)."""
        return [n for n, r in self.eligibility.items() if r == ""]


def cpu_candidate(comp: Composite, soc,
                  energy: EnergyParams = DEFAULT_ENERGY) -> CandidateCost:
    """Cost of running the composite body as one fused CPU kernel."""
    cycles = (soc.cpu.kernel_cycles(comp.body)
              + soc.params.runtime_call_overhead)
    return CandidateCost(
        target="cpu", latency_cycles=cycles,
        energy_pj=cycles * energy.cpu_pj_per_cycle)


def accel_candidate(spec: LayerSpec, target: str, soc, config,
                    cache=None,
                    energy: EnergyParams = DEFAULT_ENERGY) -> CandidateCost:
    """Cost of offloading ``spec`` to ``target`` under ``config``.

    Solves the tiling exactly as :func:`~repro.core.compiler.compile_model`
    would (same heuristic set, ``alpha``, L1 budget), so a subsequent
    compile of the chosen mapping hits the cache.
    """
    tiler = DoryTiler(
        target, soc.params, heuristic_set_for(config.heuristics, target),
        alpha=config.alpha, l1_budget=config.l1_budget)
    try:
        sol = cache.solve(tiler, spec) if cache is not None else tiler.solve(spec)
    except TilingError as exc:
        return CandidateCost(target=target, feasible=False, reason=str(exc))
    rec = cost_layer(spec, sol, soc.accelerator(target), soc.params)
    return CandidateCost(
        target=target, latency_cycles=rec.total_cycles,
        energy_pj=kernel_energy_pj(rec, soc.params, energy))


def chain_candidate(specs: List[LayerSpec], targets: List[str], soc, config,
                    cache=None, budget_bytes: Optional[int] = None,
                    input_held: bool = True,
                    energy: EnergyParams = DEFAULT_ENERGY) -> CandidateCost:
    """Price a fused depth-first chain as one more mapping alternative.

    ``specs``/``targets`` are the chain layers and the accelerator each
    would run on. The chain's patch grid is sized against
    ``budget_bytes`` (defaults to the platform L2 — compilation later
    subtracts the static image, which is unknown before codegen), and
    each layer is charged through the same depth-first cost model the
    executor replays (:func:`~repro.runtime.cost.cost_layer_depthfirst`).
    The priced latency equals the modeled chain cycles of executing
    exactly this chain with this grid; the compiler's step-level
    planner may still segment differently (it additionally fuses
    residual ``add`` steps, which only exist after codegen).
    Infeasible when no patch grid both shrinks the chain's residency
    and respects the recompute gate within the budget.
    """
    from ..extensions.depthfirst import plan_chain_grid
    from ..runtime.cost import cost_layer_depthfirst

    if budget_bytes is None:
        budget_bytes = soc.params.l2_bytes
    plan = plan_chain_grid(specs, budget_bytes, mode="on",
                           input_held=input_held)
    if plan is None or plan.peak_bytes > budget_bytes:
        return CandidateCost(
            target="depthfirst", feasible=False,
            reason="no patch grid fits the chain's L2 residency in "
                   f"{budget_bytes} B within the recompute gate")
    cycles = pj = 0.0
    for spec, target, ratio in zip(specs, targets, plan.per_layer_recompute):
        if spec.kind == "add":
            # adds carry no tiling solution requirement beyond their
            # own layer; price them like the accel candidate does
            cand = accel_candidate(spec, target, soc, config, cache, energy)
            cycles += cand.latency_cycles * ratio
            pj += cand.energy_pj * ratio
            continue
        tiler = DoryTiler(
            target, soc.params, heuristic_set_for(config.heuristics, target),
            alpha=config.alpha, l1_budget=config.l1_budget)
        try:
            sol = (cache.solve(tiler, spec) if cache is not None
                   else tiler.solve(spec))
        except TilingError as exc:
            return CandidateCost(target="depthfirst", feasible=False,
                                 reason=f"{spec.name}: {exc}")
        rec = cost_layer_depthfirst(spec, sol, soc.accelerator(target),
                                    soc.params, ratio, plan.num_patches)
        cycles += rec.total_cycles
        pj += kernel_energy_pj(rec, soc.params, energy)
    return CandidateCost(target="depthfirst", latency_cycles=cycles,
                         energy_pj=pj)


def enumerate_sites(graph: Graph, soc, config, cache=None,
                    energy: EnergyParams = DEFAULT_ENERGY
                    ) -> List[MappingSite]:
    """All dispatchable composites of a partitioned graph, fully costed.

    Every site always carries a feasible ``"cpu"`` candidate; rejected
    or tiling-infeasible accelerator candidates are kept in
    ``site.rejected`` with their reasons for the decision table.
    """
    sites: List[MappingSite] = []
    for comp, spec, eligibility, spec_error in dispatchable_layers(graph, soc):
        site = MappingSite(
            index=len(sites), node_id=comp.node_id,
            layer_name=spec.name if spec else comp.pattern_name,
            pattern=comp.pattern_name,
            spec=spec, spec_error=spec_error, eligibility=eligibility,
            out_bytes=comp.ttype.storage_bytes,
        )
        site.candidates["cpu"] = cpu_candidate(comp, soc, energy)
        if spec is not None:
            for name, reason in eligibility.items():
                if reason:
                    site.rejected[name] = CandidateCost(
                        target=name, feasible=False, reason=reason)
                    continue
                cand = accel_candidate(spec, name, soc, config, cache, energy)
                (site.candidates if cand.feasible
                 else site.rejected)[name] = cand
        sites.append(site)
    return sites
