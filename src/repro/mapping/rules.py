"""Accelerator-aware dispatch rules (paper Sec. III-A).

The pattern matcher finds *candidate* coarse-grained operators; the
rules here "describe the constraints of the accelerator in more detail
and make the final decision whether a pattern is sent to an accelerator
or not, checking if all the parameters (e.g., stride, kernel size, data
layout, parameter ranges, and bit-width, etc.) are supported".

Each accelerator model implements ``supports(LayerSpec)``; this module
evaluates those checks over a partitioned graph and records the
decisions for inspection. The records feed both the classic rule-based
selector (:mod:`repro.mapping.selector`) and the cost-driven engine
(:mod:`repro.mapping.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dory.layer_spec import LayerSpec, spec_from_composite
from ..errors import UnsupportedError
from ..ir import Composite, Graph


@dataclass
class DispatchDecision:
    """Why one composite ended up on its target.

    ``rejections`` maps accelerator name -> rule-violation reason;
    ``spec_error`` records why DORY could not even describe the layer
    (empty when a :class:`LayerSpec` was extracted) so decision tables
    can explain CPU fallbacks. ``costs`` is filled by the cost-driven
    mapping engine: candidate target -> modeled objective cost (the
    chosen target's cost is ``chosen_cost``); the rule-based selector
    leaves it empty.
    """

    layer_name: str
    pattern: str
    target: str
    candidates: List[str] = field(default_factory=list)
    rejections: Dict[str, str] = field(default_factory=dict)
    spec_error: str = ""
    costs: Dict[str, float] = field(default_factory=dict)
    chosen_cost: Optional[float] = None

    @property
    def fallback_reason(self) -> str:
        """Why the layer is on the CPU (empty for offloaded layers)."""
        if self.target != "cpu":
            return ""
        if self.spec_error:
            return f"no layer spec: {self.spec_error}"
        return "; ".join(f"{k}: {v}" for k, v in self.rejections.items())


def layer_spec_or_reason(composite: Composite,
                         index: int) -> Tuple[Optional[LayerSpec], str]:
    """Extract a LayerSpec, or ``(None, reason)`` when DORY cannot.

    The reason is the :class:`~repro.errors.UnsupportedError` message —
    previously dropped, now recorded on the decision so tables can
    explain CPU fallbacks.
    """
    try:
        return spec_from_composite(
            composite, f"layer_{index}_{composite.pattern_name}"), ""
    except UnsupportedError as exc:
        return None, str(exc)


def layer_spec_of(composite: Composite, index: int) -> Optional[LayerSpec]:
    """Extract a LayerSpec, or None for composites DORY cannot describe."""
    return layer_spec_or_reason(composite, index)[0]


def eligible_targets(spec: LayerSpec, soc) -> Dict[str, str]:
    """Evaluate every accelerator's rules against one layer.

    Returns a map accelerator-name -> "" (accepted) or rejection reason.
    """
    results: Dict[str, str] = {}
    for name, accel in soc.accelerators.items():
        ok, reason = accel.supports(spec)
        results[name] = "" if ok else reason
    return results


def dispatchable_layers(graph: Graph, soc) -> List[tuple]:
    """``(composite, spec, eligibility, spec_error)`` per matched layer.

    ``spec`` is None (with a non-empty ``spec_error``) for composites
    DORY cannot describe; those can only run on the CPU.
    """
    out = []
    for i, comp in enumerate(graph.composites()):
        if comp.pattern_name.startswith("cpu."):
            continue
        spec, reason = layer_spec_or_reason(comp, i)
        if spec is None:
            out.append((comp, None, {}, reason))
            continue
        out.append((comp, spec, eligible_targets(spec, soc), ""))
    return out
