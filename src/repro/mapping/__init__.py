"""Heterogeneous mapping: rules, candidate costing, and global search.

This package grew out of ``repro.dispatch`` (which remains as a
backwards-compatible alias): the rule checks and the weight-dtype
selector are unchanged, and a cost-driven engine
(:mod:`repro.mapping.engine`) now searches the full mapping design
space on top of them. See DESIGN.md "Layering".
"""

from .candidates import (
    CandidateCost, MappingSite, accel_candidate, chain_candidate,
    cpu_candidate, enumerate_sites,
)
from .engine import (
    OBJECTIVES, STRATEGIES, MappingPlan, Objective, TransferEdge,
    analyze_mapping, build_edges, evaluate_assignment, format_plan,
    make_objective, plan_mapping, prepare_graph, transfer_penalty,
)
from .rules import (
    DispatchDecision, dispatchable_layers, eligible_targets,
    layer_spec_of, layer_spec_or_reason,
)
from .selector import (
    assign_targets, dispatch_summary, format_columns, retarget_composites,
    rules_target,
)

__all__ = [
    "CandidateCost", "MappingSite", "accel_candidate", "chain_candidate",
    "cpu_candidate", "enumerate_sites",
    "OBJECTIVES", "STRATEGIES", "MappingPlan", "Objective", "TransferEdge",
    "analyze_mapping", "build_edges", "evaluate_assignment", "format_plan",
    "make_objective", "plan_mapping", "prepare_graph", "transfer_penalty",
    "DispatchDecision", "dispatchable_layers", "eligible_targets",
    "layer_spec_of", "layer_spec_or_reason",
    "assign_targets", "dispatch_summary", "format_columns",
    "retarget_composites", "rules_target",
]
