"""Shared diagnostic vocabulary for the static checker framework.

Every checker family (graph, memory plan, compiled plan, artifact)
reports findings as :class:`Diagnostic` records carrying a severity, a
compilation stage, a location (node / buffer / step name) and a stable
machine-readable code such as ``V-GRAPH-003``. :class:`CheckResult`
aggregates diagnostics across checkers and renders them as text or as
the JSON document consumed by CI and external tooling (see
``docs/CHECKS.md`` for the catalog and the output schema).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: version tag of the ``repro check --json`` output document.
CHECK_SCHEMA = "repro-check/1"


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are invariant violations — the deployment is
    structurally invalid and must not be executed or served.
    ``WARNING`` findings are suspicious but not provably wrong;
    ``INFO`` records context (e.g. an expected-OoM grid cell skipped).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: catalog of every diagnostic code a checker may emit, keyed by code.
#: Kept next to the dataclass so ``docs/CHECKS.md`` and the JSON schema
#: test can assert the catalog and the checkers never drift apart.
CODES: Dict[str, str] = {
    # graph verifier -------------------------------------------------------
    "V-GRAPH-001": "graph contains a cycle (defs-before-uses violated)",
    "V-GRAPH-002": "free variable: a Var is reachable but not declared",
    "V-GRAPH-003": "dangling input: a declared Var never reaches the output",
    "V-GRAPH-004": "operator arity mismatch or unknown operator",
    "V-GRAPH-005": "re-derived operator type disagrees with the node type",
    "V-GRAPH-006": "composite body inconsistent with its call site",
    "V-GRAPH-007": "illegal quantization attribute (shift/clip/dtype range)",
    # memory-plan verifier -------------------------------------------------
    "V-MEM-001": "buffer referenced by the schedule is missing from the plan",
    "V-MEM-002": "two temporally live buffers overlap in the L2 arena",
    "V-MEM-003": "arena size is smaller than the furthest allocated extent",
    "V-MEM-004": "static image + activation arena exceed the L2 capacity",
    "V-MEM-005": "recorded lifetime does not cover a use in the schedule",
    "V-MEM-006": "depth-first slab smaller than its worst-case patch extent",
    "V-MEM-007": "depth-first chain residency/ping-pong invariant violated",
    # compiled-plan / tiling verifier --------------------------------------
    "V-PLAN-001": "step consumes an operand that was never produced",
    "V-PLAN-002": "two steps produce the same buffer",
    "V-PLAN-003": "network output or buffer spec missing from the program",
    "V-PLAN-004": "tile loop does not cover the output exactly (gap/overlap)",
    "V-PLAN-005": "nominal per-tile footprint exceeds the L1 budget",
    "V-PLAN-006": "recorded tiling bytes disagree with the re-derived values",
    "V-PLAN-007": "weight tile exceeds the digital weight-memory capacity",
    "V-PLAN-008": "step geometry inconsistent with its buffers",
    "V-PLAN-009": "step targets an accelerator the platform does not have",
    # artifact verifier ----------------------------------------------------
    "V-ART-001": "artifact unreadable or bad magic (truncated/corrupt file)",
    "V-ART-002": "unsupported artifact container version",
    "V-ART-003": "artifact schema violation (missing/ill-typed section)",
    "V-ART-004": "stored config fingerprint disagrees with the stored config",
    "V-ART-005": "artifact failed integrity reconstruction (fingerprint)",
    "V-ART-006": "chain/mapping section inconsistent with the program",
    "V-ART-010": "native library sidecar build key mismatches the artifact",
    "V-ART-011": "native library sidecar exists but cannot be loaded",
    "V-ART-012": "artifact platform unregistered or mismatches deployment",
    # runner ---------------------------------------------------------------
    "V-RUN-001": "grid cell skipped (expected out-of-memory deployment)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker."""

    code: str                 #: stable machine-readable code, e.g. V-MEM-002
    severity: Severity
    stage: str                #: pipeline stage, e.g. "graph", "transform:dead_code"
    message: str
    location: str = ""        #: node / buffer / step / section name

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "stage": self.stage,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        return (f"{self.severity.value.upper():<7} {self.code} "
                f"({self.stage}){loc}: {self.message}")


def error(code: str, stage: str, message: str,
          location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, stage, message, location)


def warning(code: str, stage: str, message: str,
            location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, stage, message, location)


def info(code: str, stage: str, message: str,
         location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.INFO, stage, message, location)


@dataclass
class CheckResult:
    """Aggregated outcome of one verification run."""

    target: str = ""               #: what was checked (model/artifact label)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)  #: checker families run

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def codes(self) -> List[str]:
        """Sorted unique diagnostic codes present in this result."""
        return sorted({d.code for d in self.diagnostics})

    def add(self, diagnostics: Iterable[Diagnostic],
            checker: Optional[str] = None) -> "CheckResult":
        self.diagnostics.extend(diagnostics)
        if checker is not None and checker not in self.checked:
            self.checked.append(checker)
        return self

    def merge(self, other: "CheckResult") -> "CheckResult":
        self.diagnostics.extend(other.diagnostics)
        for c in other.checked:
            if c not in self.checked:
                self.checked.append(c)
        return self

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def render(self) -> str:
        head = (f"{self.target or 'check'}: "
                f"{'PASS' if self.ok else 'FAIL'} "
                f"({len(self.errors)} errors, {len(self.warnings)} warnings; "
                f"checkers: {', '.join(self.checked) or 'none'})")
        lines = [head]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "ok": self.ok,
            "checked": list(self.checked),
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
