"""Verification entry points: one call per target kind, plus the grid.

``verify_graph`` / ``verify_model`` / ``verify_artifact`` wrap the
checker families into :class:`~repro.verify.diagnostics.CheckResult`
aggregates, ``assert_valid`` turns a failed result into a
:class:`~repro.errors.VerificationError`, and ``verify_grid`` runs the
clean-pass sweep CI gates on: every zoo model x every Table I
configuration, checked both as a fresh compile and as a packed ``.dna``
artifact.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, List, Optional

from ..errors import OutOfMemoryError, VerificationError
from .artifact_checks import check_artifact_dict, check_artifact_file
from .diagnostics import CHECK_SCHEMA, CheckResult, info
from .graph_checks import check_graph
from .memory_checks import check_memory_plan
from .plan_checks import check_compiled_plan


def verify_graph(graph: Any, stage: str = "graph",
                 target: str = "") -> CheckResult:
    """Run the graph verifier over one IR graph."""
    result = CheckResult(target=target or getattr(graph, "name", "graph"))
    result.add(check_graph(graph, stage=stage), "graph")
    return result


def verify_model(compiled: Any, soc: Any = None,
                 config: Any = None) -> CheckResult:
    """Run graph + memory-plan + compiled-plan checks over a compile.

    ``soc`` enables the platform-budget checks (L2 capacity, L1 tile
    footprints, digital weight memory, legal targets); ``config``
    carries the compile-time overrides (``check_l2``, ``l1_budget``).
    """
    label = f"{compiled.name}" + (
        f"[{compiled.config_name}]" if compiled.config_name else "")
    result = CheckResult(target=label)
    if compiled.graph is not None:
        result.add(check_graph(compiled.graph, stage="graph"), "graph")
    result.add(check_memory_plan(
        compiled,
        l2_bytes=soc.params.l2_bytes if soc is not None else None,
        check_l2=config.check_l2 if config is not None else True,
    ), "memory")
    result.add(check_compiled_plan(
        compiled,
        params=soc.params if soc is not None else None,
        l1_budget=config.l1_budget if config is not None else None,
        accelerators=(list(soc.accelerators) if soc is not None else None),
    ), "plan")
    return result


def verify_artifact(target: Any, deep: bool = True) -> CheckResult:
    """Run the artifact verifier over a ``.dna`` path or raw dict."""
    if isinstance(target, dict):
        label = str(target.get("model", "artifact"))
        diags = check_artifact_dict(target, deep=deep)
    else:
        label = os.path.basename(str(target))
        diags = check_artifact_file(str(target), deep=deep)
    result = CheckResult(target=label)
    result.add(diags, "artifact")
    return result


def assert_valid(result: CheckResult) -> CheckResult:
    """Raise :class:`VerificationError` when ``result`` has errors."""
    if not result.ok:
        raise VerificationError(result.render())
    return result


def verify_grid(models: Optional[List[str]] = None,
                configs: Optional[List[str]] = None,
                artifacts: bool = True) -> List[CheckResult]:
    """Clean-pass sweep: zoo models x Table I configurations.

    Each cell is compiled fresh and verified; with ``artifacts=True``
    the deployment is additionally packed to a ``.dna`` file and the
    file re-verified (deep mode). Cells whose deployment legitimately
    does not fit L2 — the paper's MobileNet-on-plain-TVM OoM — are
    recorded as an INFO-level ``V-RUN-001`` skip, not a failure.
    """
    from ..core.compiler import compile_model
    from ..eval.harness import CONFIGS
    from ..frontend.modelzoo import MLPERF_TINY
    from ..serve.artifact import save_artifact
    from ..soc import get_platform

    results: List[CheckResult] = []
    for model in (models or sorted(MLPERF_TINY)):
        for config_name in (configs or list(CONFIGS)):
            precision, soc_kwargs, config = CONFIGS[config_name]
            soc = get_platform("diana", **soc_kwargs)
            graph = MLPERF_TINY[model](precision=precision)
            label = f"{model}/{config_name}"
            try:
                compiled = compile_model(graph, soc, config)
            except OutOfMemoryError as exc:
                skip = CheckResult(target=label)
                skip.add([info("V-RUN-001", "compile", str(exc))], "run")
                results.append(skip)
                continue
            result = verify_model(compiled, soc=soc, config=config)
            result.target = label
            results.append(result)
            if not artifacts:
                continue
            art_result = CheckResult(target=f"{label}.dna")
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, f"{model}-{config_name}.dna")
                save_artifact(path, compiled, soc, config)
                art_result.add(check_artifact_file(path, deep=True),
                               "artifact")
            results.append(art_result)
    return results


def grid_report(results: List[CheckResult]) -> Dict[str, Any]:
    """The ``repro check --json`` document (schema ``repro-check/1``)."""
    return {
        "schema": CHECK_SCHEMA,
        "ok": all(r.ok for r in results),
        "targets": [r.to_dict() for r in results],
    }
