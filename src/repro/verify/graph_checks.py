"""Graph verifier: structural and type invariants of the dataflow IR.

Re-derives every property from operator semantics instead of trusting
the values cached on the nodes, so a transform that corrupts a graph —
wrong output type, dangling input, an illegal requantization constant —
is caught at the stage that introduced it rather than when execution
output diverges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import Call, Composite, Constant, Graph, Node, Var, get_op
from ..ir.dtypes import DataType
from .diagnostics import Diagnostic, error, warning

#: inclusive value range of the small integer dtypes the flow quantizes
#: to; used to validate clip bounds and constant payload ranges.
_DTYPE_RANGES = {
    "ternary": (-1, 1),
    "int7": (-64, 63),
    "int8": (-128, 127),
    "int16": (-(2 ** 15), 2 ** 15 - 1),
    "int32": (-(2 ** 31), 2 ** 31 - 1),
}

#: right_shift amounts outside this range lose all integer precision /
#: are undefined for the 32-bit accumulators the accelerators carry.
_MAX_SHIFT = 31


def _loc(node: Node) -> str:
    if isinstance(node, Var):
        return f"%{node.name}"
    if isinstance(node, Call):
        return f"{node.op}#{node.node_id}"
    if isinstance(node, Composite):
        return f"{node.pattern_name}#{node.node_id}"
    if isinstance(node, Constant):
        return f"const#{node.node_id}"
    return f"node#{node.node_id}"


def _check_acyclic(graph: Graph, stage: str,
                   diags: List[Diagnostic]) -> bool:
    """Defs-before-uses: the dependency relation must be a DAG."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    stack: List[tuple] = [(graph.output, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            color[node.node_id] = BLACK
            continue
        state = color.get(node.node_id, WHITE)
        if state == BLACK:
            continue
        if state == GREY:
            continue
        color[node.node_id] = GREY
        stack.append((node, True))
        for inp in node.inputs:
            if color.get(inp.node_id, WHITE) == GREY:
                diags.append(error(
                    "V-GRAPH-001", stage,
                    f"cycle through {_loc(inp)} (a node transitively "
                    "consumes its own output)", _loc(node)))
                return False
            if color.get(inp.node_id, WHITE) == WHITE:
                stack.append((inp, False))
    return True


def _check_vars(graph: Graph, stage: str, reachable: List[Node],
                diags: List[Diagnostic]) -> None:
    declared = {v.node_id for v in graph.inputs}
    reachable_vars = {n.node_id for n in reachable if isinstance(n, Var)}
    for node in reachable:
        if isinstance(node, Var) and node.node_id not in declared:
            diags.append(error(
                "V-GRAPH-002", stage,
                f"Var {node.name!r} is consumed but is not a declared "
                "graph input", _loc(node)))
    for v in graph.inputs:
        if v.node_id not in reachable_vars:
            diags.append(warning(
                "V-GRAPH-003", stage,
                f"declared input {v.name!r} never reaches the output "
                "(dangling input)", _loc(v)))


def _check_call(node: Call, stage: str, diags: List[Diagnostic]) -> None:
    try:
        op = get_op(node.op)
    except Exception as exc:  # unknown operator
        diags.append(error("V-GRAPH-004", stage, str(exc), _loc(node)))
        return
    if len(node.inputs) != op.arity:
        diags.append(error(
            "V-GRAPH-004", stage,
            f"{node.op} expects {op.arity} inputs, has "
            f"{len(node.inputs)}", _loc(node)))
        return
    if op.infer is None:
        return
    try:
        derived = op.infer([n.ttype for n in node.inputs], node.attrs)
    except Exception as exc:
        diags.append(error(
            "V-GRAPH-005", stage,
            f"{node.op}: shape/dtype inference rejects the recorded "
            f"operand types ({exc})", _loc(node)))
        return
    if derived != node.ttype:
        diags.append(error(
            "V-GRAPH-005", stage,
            f"{node.op}: node type {node.ttype} disagrees with the "
            f"re-derived type {derived}", _loc(node)))


def _dtype_range(dt: DataType) -> Optional[tuple]:
    return _DTYPE_RANGES.get(dt.name)


def _check_quantization(node: Call, stage: str,
                        diags: List[Diagnostic]) -> None:
    """Quantization-attribute legality (shift / clip / constant ranges)."""
    if node.op == "right_shift":
        amount = node.inputs[1]
        if isinstance(amount, Constant):
            vals = amount.value.data.reshape(-1)
            if len(vals) and (int(vals.min()) < 0
                              or int(vals.max()) > _MAX_SHIFT):
                diags.append(error(
                    "V-GRAPH-007", stage,
                    f"right_shift amount {int(vals.min())}..{int(vals.max())}"
                    f" outside [0, {_MAX_SHIFT}]", _loc(node)))
    elif node.op == "clip":
        a_min, a_max = node.attrs["a_min"], node.attrs["a_max"]
        if a_min > a_max:
            diags.append(error(
                "V-GRAPH-007", stage,
                f"clip bounds inverted: a_min {a_min} > a_max {a_max}",
                _loc(node)))
        rng = _dtype_range(node.dtype)
        if rng is not None and (a_min < rng[0] or a_max > rng[1]):
            diags.append(error(
                "V-GRAPH-007", stage,
                f"clip bounds [{a_min}, {a_max}] exceed the {node.dtype.name}"
                f" range [{rng[0]}, {rng[1]}]", _loc(node)))
    elif node.op == "cast":
        # op.validate_attrs already rejects unknown dtype strings; check
        # the destination can represent a requantized activation.
        if node.dtype.name not in _DTYPE_RANGES and \
                node.dtype.name != "float32":
            diags.append(error(
                "V-GRAPH-007", stage,
                f"cast to unsupported dtype {node.dtype.name!r}",
                _loc(node)))


def _check_constant(node: Constant, stage: str,
                    diags: List[Diagnostic]) -> None:
    rng = _dtype_range(node.dtype)
    if rng is None or node.value.data.size == 0:
        return
    lo = int(node.value.data.min())
    hi = int(node.value.data.max())
    if lo < rng[0] or hi > rng[1]:
        diags.append(error(
            "V-GRAPH-007", stage,
            f"constant payload range [{lo}, {hi}] exceeds its declared "
            f"{node.dtype.name} range [{rng[0]}, {rng[1]}]", _loc(node)))


def _check_composite(node: Composite, stage: str,
                     diags: List[Diagnostic]) -> None:
    body = node.body
    if not isinstance(body, Graph):
        diags.append(error(
            "V-GRAPH-006", stage, "composite body is not a Graph",
            _loc(node)))
        return
    if len(body.inputs) != len(node.inputs):
        diags.append(error(
            "V-GRAPH-006", stage,
            f"body declares {len(body.inputs)} params but the call site "
            f"supplies {len(node.inputs)} inputs", _loc(node)))
    for param, inp in zip(body.inputs, node.inputs):
        if param.ttype != inp.ttype:
            diags.append(error(
                "V-GRAPH-006", stage,
                f"param {param.name!r} type {param.ttype} != supplied "
                f"input type {inp.ttype}", _loc(node)))
    if body.output.ttype != node.ttype:
        diags.append(error(
            "V-GRAPH-006", stage,
            f"composite type {node.ttype} != body output type "
            f"{body.output.ttype}", _loc(node)))
    # the body is a full graph of its own: recurse with a scoped stage
    diags.extend(check_graph(body, stage=f"{stage}/{node.pattern_name}"))


def check_graph(graph: Graph, stage: str = "graph") -> List[Diagnostic]:
    """Run every graph invariant check; returns the findings.

    ``stage`` names where in the pipeline the graph came from (e.g.
    ``"transform:fold_constants"``) so a diagnostic names the transform
    that produced the broken graph.
    """
    diags: List[Diagnostic] = []
    if not _check_acyclic(graph, stage, diags):
        return diags  # traversal below would not terminate meaningfully

    reachable = graph.topo_order()
    _check_vars(graph, stage, reachable, diags)

    seen: Set[int] = set()
    for node in reachable:
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        if isinstance(node, Call):
            _check_call(node, stage, diags)
            _check_quantization(node, stage, diags)
        elif isinstance(node, Constant):
            _check_constant(node, stage, diags)
        elif isinstance(node, Composite):
            _check_composite(node, stage, diags)
    return diags
