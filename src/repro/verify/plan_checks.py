"""Compiled-plan / tiling verifier.

Checks the executable program a compile produced: dataflow order over
named buffers, exact tile coverage of every accelerator layer's output
geometry (no gaps, no overlaps, partial-sum blocks that tile the input
channels exactly), per-tile L1 footprints within the budget the tiler
promised, and that the recorded per-tile byte counts — the inputs of
the DMA/cycle cost model — agree with values re-derived from the layer
geometry.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.program import AccelStep, CompiledModel, CpuKernelStep
from ..dory.tiler import _l1_bytes
from ..dory.tiling_types import tiles_of
from ..soc.params import DianaParams
from .diagnostics import Diagnostic, error

_STAGE = "plan"


def _check_dataflow(compiled: CompiledModel,
                    diags: List[Diagnostic]) -> None:
    """Every operand produced before consumed; unique producers."""
    available = set(compiled.input_names)
    for step in compiled.steps:
        for name in step.input_names:
            if name not in available:
                diags.append(error(
                    "V-PLAN-001", _STAGE,
                    f"consumes {name!r} which no earlier step produced",
                    step.name))
        if step.output_name in available:
            diags.append(error(
                "V-PLAN-002", _STAGE,
                f"produces {step.output_name!r} which already exists",
                step.name))
        available.add(step.output_name)
        for name in list(step.input_names) + [step.output_name]:
            if name not in compiled.buffers:
                diags.append(error(
                    "V-PLAN-003", _STAGE,
                    f"buffer {name!r} has no BufferSpec", step.name))
    if compiled.output_name not in available:
        diags.append(error(
            "V-PLAN-003", _STAGE,
            f"network output {compiled.output_name!r} is never produced"))


def _check_geometry(step: AccelStep, compiled: CompiledModel,
                    diags: List[Diagnostic]) -> bool:
    """Layer spec self-consistent and matching its input buffers."""
    spec = step.spec
    try:
        spec.validate()
    except Exception as exc:
        diags.append(error("V-PLAN-008", _STAGE, str(exc), step.name))
        return False
    data_inputs = step.input_names[:2 if spec.kind == "add" else 1]
    for name in data_inputs:
        buf = compiled.buffers.get(name)
        if buf is not None and \
                buf.ttype.num_elements != spec.input_elements():
            diags.append(error(
                "V-PLAN-008", _STAGE,
                f"spec reads {spec.input_elements()} elements but buffer "
                f"{name!r} holds {buf.ttype.num_elements}", step.name))
    return True


def _check_tiles(step: AccelStep, compiled: CompiledModel,
                 diags: List[Diagnostic]) -> None:
    """Tile loop covers the written output exactly, reductions tile C."""
    spec, cfg = step.spec, step.tiling.cfg
    out_buf = compiled.buffers.get(step.output_name)
    if out_buf is not None and \
            out_buf.ttype.num_elements != spec.out_channels * spec.oy * spec.ox:
        diags.append(error(
            "V-PLAN-004", _STAGE,
            f"tile grid spans {spec.out_channels}x{spec.oy}x{spec.ox} "
            f"(= {spec.out_channels * spec.oy * spec.ox} elements) but "
            f"the output buffer {step.output_name!r} holds "
            f"{out_buf.ttype.num_elements} — the loop would write "
            "outside the tensor or leave part of it stale", step.name))
    coverage = np.zeros((spec.out_channels, spec.oy, spec.ox),
                        dtype=np.int32)
    red_blocks = {}
    for t in tiles_of(spec, cfg):
        if (t.k0 < 0 or t.oy0 < 0 or t.ox0 < 0
                or t.k1 > spec.out_channels or t.oy1 > spec.oy
                or t.ox1 > spec.ox):
            diags.append(error(
                "V-PLAN-004", _STAGE,
                f"tile [{t.k0}:{t.k1}, {t.oy0}:{t.oy1}, {t.ox0}:{t.ox1}] "
                f"exceeds the {spec.out_channels}x{spec.oy}x{spec.ox} "
                "output", step.name))
            return
        if t.last_reduction:
            coverage[t.k0:t.k1, t.oy0:t.oy1, t.ox0:t.ox1] += 1
        red_blocks.setdefault((t.k0, t.oy0, t.ox0), []).append(
            (t.c0, t.c1, t.last_reduction))
    if coverage.min() < 1:
        missed = int((coverage == 0).sum())
        diags.append(error(
            "V-PLAN-004", _STAGE,
            f"tile loop leaves {missed} of {coverage.size} output "
            "elements uncovered (gap)", step.name))
    if coverage.max() > 1:
        multi = int((coverage > 1).sum())
        diags.append(error(
            "V-PLAN-004", _STAGE,
            f"tile loop writes {multi} output elements more than once "
            "(overlap)", step.name))
    for (k0, oy0, ox0), blocks in red_blocks.items():
        cursor = 0
        bad = blocks[-1][1] != spec.in_channels or not blocks[-1][2] \
            or any(last for c0, c1, last in blocks[:-1])
        for c0, c1, _last in blocks:
            if c0 != cursor or c1 <= c0:
                bad = True
                break
            cursor = c1
        if bad or cursor != spec.in_channels:
            diags.append(error(
                "V-PLAN-004", _STAGE,
                f"partial-sum blocks of output tile ({k0},{oy0},{ox0}) do"
                f" not tile the {spec.in_channels} input channels exactly",
                step.name))
            return


def _check_l1(step: AccelStep, params: DianaParams,
              l1_budget: Optional[int],
              diags: List[Diagnostic]) -> None:
    """Eq. 2 feasibility + recorded bytes == re-derived bytes."""
    spec, sol = step.spec, step.tiling
    in_b, out_b, w_b = _l1_bytes(spec, sol.cfg, step.accel_target)
    budget = params.l1_bytes if l1_budget is None else int(l1_budget)
    if in_b + out_b + w_b > budget:
        diags.append(error(
            "V-PLAN-005", _STAGE,
            f"nominal tile footprint {in_b + out_b + w_b} B "
            f"(in {in_b} + out {out_b} + weights {w_b}) exceeds the "
            f"L1 budget {budget} B", step.name))
    recorded = (sol.l1_in_bytes, sol.l1_out_bytes, sol.l1_weight_bytes)
    if recorded != (in_b, out_b, w_b):
        diags.append(error(
            "V-PLAN-006", _STAGE,
            f"recorded per-tile bytes {recorded} disagree with the "
            f"re-derived (in, out, weight) = ({in_b}, {out_b}, {w_b}) — "
            "the cost model would price the wrong DMA stream", step.name))
    if step.accel_target == "soc.digital" and spec.kind != "add":
        cfg = sol.cfg
        if spec.kind == "dense":
            w_tile = cfg.k_t * cfg.c_t
        elif spec.kind == "dwconv2d":
            w_tile = cfg.c_t * spec.fy * spec.fx
        else:
            w_tile = cfg.k_t * cfg.c_t * spec.fy * spec.fx
        if w_tile > params.dig_weight_bytes:
            diags.append(error(
                "V-PLAN-007", _STAGE,
                f"weight tile {w_tile} B exceeds the digital weight "
                f"memory ({params.dig_weight_bytes} B)", step.name))


def check_compiled_plan(compiled: CompiledModel,
                        params: Optional[DianaParams] = None,
                        l1_budget: Optional[int] = None,
                        accelerators: Optional[List[str]] = None
                        ) -> List[Diagnostic]:
    """Run every compiled-plan invariant check; returns the findings.

    ``params`` enables the L1/weight-memory budget checks,
    ``l1_budget`` mirrors ``CompilerConfig.l1_budget`` (Eq. 2 override)
    and ``accelerators`` — when given — restricts legal step targets.
    """
    diags: List[Diagnostic] = []
    _check_dataflow(compiled, diags)
    for step in compiled.steps:
        if isinstance(step, CpuKernelStep):
            if step.body is None:
                diags.append(error(
                    "V-PLAN-008", _STAGE, "CPU step carries no fused body",
                    step.name))
            continue
        if not isinstance(step, AccelStep):
            diags.append(error(
                "V-PLAN-008", _STAGE,
                f"unknown step type {type(step).__name__}", step.name))
            continue
        if step.spec is None or step.tiling is None:
            diags.append(error(
                "V-PLAN-008", _STAGE,
                "accelerator step carries no spec/tiling", step.name))
            continue
        if accelerators is not None and \
                step.accel_target not in accelerators:
            diags.append(error(
                "V-PLAN-009", _STAGE,
                f"targets {step.accel_target!r}; platform offers "
                f"{sorted(accelerators)}", step.name))
        if not _check_geometry(step, compiled, diags):
            continue
        _check_tiles(step, compiled, diags)
        if params is not None:
            _check_l1(step, params, l1_budget, diags)
    return diags
