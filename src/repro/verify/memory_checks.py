"""Memory-plan verifier: L2 arena and liveness invariants.

Rebuilds liveness from the compiled schedule and asserts the planner's
promises hold: every scheduled buffer is planned, temporally live
buffers never overlap in the arena, the arena accounting is consistent
and fits the platform's L2, and depth-first patch slabs are large
enough for their worst-case halo'd extents with correctly alternating
(disjoint) ping-pong neighbours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.program import AccelStep, CompiledModel, DepthFirstChain
from .diagnostics import Diagnostic, error

_STAGE = "memory"


def _live_interval(plan, name: str) -> Tuple[int, int]:
    life = plan.lifetimes[name]
    return life.start, life.end


def _check_coverage(compiled: CompiledModel,
                    diags: List[Diagnostic]) -> List[str]:
    """Every scheduled buffer must be fully described by the plan."""
    plan = compiled.memory_plan
    names: List[str] = list(compiled.input_names)
    for step in compiled.steps:
        for name in list(step.input_names) + [step.output_name]:
            if name not in names:
                names.append(name)
    planned = []
    for name in names:
        missing = [part for part, table in
                   (("offset", plan.offsets), ("size", plan.sizes),
                    ("lifetime", plan.lifetimes))
                   if name not in table]
        if missing:
            diags.append(error(
                "V-MEM-001", _STAGE,
                f"buffer is scheduled but the plan has no "
                f"{'/'.join(missing)} for it", name))
        else:
            planned.append(name)
    return planned


def _check_liveness(compiled: CompiledModel, planned: List[str],
                    diags: List[Diagnostic]) -> None:
    """Recorded lifetimes must cover every use in the schedule."""
    plan = compiled.memory_plan
    uses: Dict[str, List[int]] = {}
    for name in compiled.input_names:
        uses.setdefault(name, [])
    for idx, step in enumerate(compiled.steps):
        for name in list(step.input_names) + [step.output_name]:
            uses.setdefault(name, []).append(idx)
    for name in planned:
        start, end = _live_interval(plan, name)
        for idx in uses.get(name, []):
            if not start <= idx <= end:
                diags.append(error(
                    "V-MEM-005", _STAGE,
                    f"used at step {idx} but planned live only over "
                    f"[{start}, {end}]", name))
                break
        if name == compiled.output_name and end < len(compiled.steps):
            diags.append(error(
                "V-MEM-005", _STAGE,
                f"network output dies at step {end}, before the end of "
                f"the program ({len(compiled.steps)})", name))


def _check_overlap(compiled: CompiledModel, planned: List[str],
                   diags: List[Diagnostic]) -> None:
    """Temporally live buffers must occupy disjoint arena ranges."""
    plan = compiled.memory_plan
    entries = sorted(planned, key=lambda n: plan.offsets[n])
    for i, a in enumerate(entries):
        a0, a1 = plan.offsets[a], plan.offsets[a] + plan.sizes[a]
        sa, ea = _live_interval(plan, a)
        for b in entries[i + 1:]:
            b0 = plan.offsets[b]
            if b0 >= a1:
                break  # sorted by offset: no later entry can overlap a
            sb, eb = _live_interval(plan, b)
            if ea < sb or eb < sa:
                continue  # disjoint in time: sharing memory is the point
            diags.append(error(
                "V-MEM-002", _STAGE,
                f"overlaps buffer {b!r} in the arena "
                f"([{a0}, {a1}) vs [{b0}, {b0 + plan.sizes[b]})) while "
                f"both are live (steps [{max(sa, sb)}, {min(ea, eb)}])", a))


def _check_arena(compiled: CompiledModel, planned: List[str],
                 l2_bytes: Optional[int], check_l2: bool,
                 diags: List[Diagnostic]) -> None:
    plan = compiled.memory_plan
    extent = max((plan.offsets[n] + plan.sizes[n] for n in planned),
                 default=0)
    if plan.arena_bytes < extent:
        diags.append(error(
            "V-MEM-003", _STAGE,
            f"arena_bytes {plan.arena_bytes} < furthest allocated extent "
            f"{extent}"))
    if check_l2 and l2_bytes is not None:
        need = compiled.size.total + plan.arena_bytes
        if need > l2_bytes:
            diags.append(error(
                "V-MEM-004", _STAGE,
                f"image {compiled.size.total} B + arena {plan.arena_bytes} B"
                f" = {need} B exceeds L2 ({l2_bytes} B)"))


def _chain_specs(compiled: CompiledModel, chain: DepthFirstChain):
    specs = []
    for j in range(chain.length):
        step = compiled.steps[chain.start + j]
        if not isinstance(step, AccelStep) or step.spec is None:
            return None
        specs.append(step.spec)
    return specs


def _check_depthfirst(compiled: CompiledModel,
                      diags: List[Diagnostic]) -> None:
    """Depth-first slabs: extents fit, externals span, ping-pong disjoint."""
    from ..extensions.depthfirst import analyze_depth_first

    plan = compiled.memory_plan
    num_steps = len(compiled.steps)
    for ci, chain in enumerate(compiled.depthfirst_chains):
        label = f"chain{ci}@step{chain.start}"
        if (chain.start < 0 or chain.length < 2
                or chain.stop > num_steps):
            diags.append(error(
                "V-MEM-007", _STAGE,
                f"chain [{chain.start}, {chain.stop}) outside the "
                f"{num_steps}-step program", label))
            continue
        specs = _chain_specs(compiled, chain)
        if specs is None:
            diags.append(error(
                "V-MEM-007", _STAGE,
                "chain covers a step that is not a spec-carrying "
                "accelerator step", label))
            continue
        try:
            replan = analyze_depth_first(specs, chain.patch_grid)
        except Exception as exc:
            diags.append(error(
                "V-MEM-007", _STAGE,
                f"chain is not analyzable patch-wise ({exc})", label))
            continue

        last = chain.stop - 1
        interior: List[str] = []
        for j in range(chain.length - 1):
            step = compiled.steps[chain.start + j]
            name = step.output_name
            interior.append(name)
            if name not in plan.sizes:
                continue  # V-MEM-001 already reported
            full = compiled.buffers[name].size_bytes \
                if name in compiled.buffers else replan.per_layer_patch_bytes[j]
            need = min(full, replan.per_layer_patch_bytes[j])
            if plan.sizes[name] < need:
                diags.append(error(
                    "V-MEM-006", _STAGE,
                    f"allocated slab {plan.sizes[name]} B < worst-case "
                    f"halo'd patch extent {need} B "
                    f"(grid {chain.patch_grid})", name))

        # ping-pong alternation: a produced slab and the slab being
        # produced from it coexist, so consecutive interiors must be
        # disjoint in the arena (non-consecutive ones may alternate).
        for a, b in zip(interior, interior[1:]):
            if a not in plan.offsets or b not in plan.offsets:
                continue
            a0, a1 = plan.offsets[a], plan.offsets[a] + plan.sizes[a]
            b0, b1 = plan.offsets[b], plan.offsets[b] + plan.sizes[b]
            if a1 > b0 and b1 > a0:
                diags.append(error(
                    "V-MEM-007", _STAGE,
                    f"consecutive slabs {a!r} and {b!r} share arena "
                    f"range [{max(a0, b0)}, {min(a1, b1)}) — ping-pong "
                    "alternation violated", label))

        # every external operand (chain input, residual skips) is read
        # per patch until the chain completes; the chain output is
        # written from the first patch on.
        produced = {compiled.steps[chain.start + j].output_name
                    for j in range(chain.length)}
        for j in range(chain.length):
            step = compiled.steps[chain.start + j]
            for name in step.input_names:
                if name in produced or name not in plan.lifetimes:
                    continue
                if plan.lifetimes[name].end < last:
                    diags.append(error(
                        "V-MEM-007", _STAGE,
                        f"external operand dies at step "
                        f"{plan.lifetimes[name].end} but the fused chain "
                        f"reads it until step {last}", name))
        out_name = compiled.steps[last].output_name
        if (out_name in plan.lifetimes
                and plan.lifetimes[out_name].start > chain.start):
            diags.append(error(
                "V-MEM-007", _STAGE,
                f"chain output {out_name!r} is born at step "
                f"{plan.lifetimes[out_name].start} but patches are "
                f"written from step {chain.start} on", label))


def check_memory_plan(compiled: CompiledModel,
                      l2_bytes: Optional[int] = None,
                      check_l2: bool = True) -> List[Diagnostic]:
    """Run every memory-plan invariant check; returns the findings.

    ``l2_bytes`` is the platform capacity for the V-MEM-004 budget
    check (omit to skip it, e.g. for a plan built for an unknown
    platform); ``check_l2`` mirrors ``CompilerConfig.check_l2``.
    """
    diags: List[Diagnostic] = []
    planned = _check_coverage(compiled, diags)
    _check_liveness(compiled, planned, diags)
    _check_overlap(compiled, planned, diags)
    _check_arena(compiled, planned, l2_bytes, check_l2, diags)
    if compiled.depthfirst_chains:
        _check_depthfirst(compiled, diags)
    return diags
