"""Static verifier framework (``repro check``).

Four checker families re-derive, from first principles, the invariants
each compiler stage promises — well-formed graphs after every
transform, non-overlapping live L2 buffers under budget, tile loops
that exactly cover each layer, and internally consistent ``.dna``
artifacts — and report findings as :class:`Diagnostic` records with
stable machine-readable codes (catalog: ``docs/CHECKS.md``).
"""

from .diagnostics import (
    CHECK_SCHEMA, CODES, CheckResult, Diagnostic, Severity, error, info,
    warning,
)
from .graph_checks import check_graph
from .memory_checks import check_memory_plan
from .plan_checks import check_compiled_plan
from .artifact_checks import (
    check_artifact_dict, check_artifact_file, read_artifact_dict,
)
from .runner import (
    assert_valid, grid_report, verify_artifact, verify_graph, verify_grid,
    verify_model,
)

__all__ = [
    "CHECK_SCHEMA", "CODES", "CheckResult", "Diagnostic", "Severity",
    "error", "warning", "info",
    "check_graph", "check_memory_plan", "check_compiled_plan",
    "check_artifact_dict", "check_artifact_file", "read_artifact_dict",
    "assert_valid", "grid_report", "verify_artifact", "verify_graph",
    "verify_grid", "verify_model",
]
