"""Artifact verifier: static ``.dna`` integrity without execution.

Validates the on-disk container shape (magic, version, section schema),
cross-checks both fingerprints (the config fingerprint against the
stored config, the content fingerprint by reconstruction), and checks
that the mapping-decision and depth-first sections are consistent with
the stored program — all without running a single inference.

The serve layer is imported lazily inside the functions: ``serve``
itself calls into this module when loading with verification enabled,
and module-level imports in both directions would cycle.
"""

from __future__ import annotations

import gzip
import json
import zlib
from typing import Any, Dict, List, Optional, Tuple

from .diagnostics import Diagnostic, error, warning
from .graph_checks import check_graph
from .memory_checks import check_memory_plan
from .plan_checks import check_compiled_plan

_STAGE = "artifact"

#: top-level sections every version-1 artifact must carry, with the
#: JSON type the loader assumes for each.
_SCHEMA: Tuple[Tuple[str, type], ...] = (
    ("model", str),
    ("config", dict),
    ("config_fingerprint", str),
    ("fingerprint", str),
    ("soc", dict),
    ("graph", dict),
    ("steps", list),
    ("buffers", dict),
    ("input_names", list),
    ("output_name", str),
    ("memory_plan", dict),
    ("size", dict),
)

_MEMORY_PLAN_KEYS = ("offsets", "sizes", "lifetimes", "arena_bytes", "reuse")
_SOC_KEYS = ("enable_digital", "enable_analog", "params")


def read_artifact_dict(path: str) -> Tuple[Optional[Dict[str, Any]],
                                           List[Diagnostic]]:
    """Read a ``.dna`` file into its raw dict, without reconstructing.

    Truncated, non-gzip or non-JSON files yield a ``V-ART-001``
    diagnostic and ``None`` instead of raising.
    """
    try:
        with gzip.open(path, "rt", encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, ValueError, EOFError, zlib.error) as exc:
        return None, [error(
            "V-ART-001", _STAGE,
            f"cannot read artifact (truncated or corrupt file): {exc}",
            path)]
    if not isinstance(obj, dict):
        return None, [error(
            "V-ART-001", _STAGE,
            f"artifact payload is {type(obj).__name__}, not an object",
            path)]
    return obj, []


def _check_schema(obj: Dict[str, Any],
                  diags: List[Diagnostic]) -> bool:
    """Container shape: magic, version, required typed sections."""
    from ..serve.artifact import ARTIFACT_MAGIC, ARTIFACT_VERSION

    if obj.get("format") != ARTIFACT_MAGIC:
        diags.append(error(
            "V-ART-001", _STAGE,
            f"bad magic {obj.get('format')!r} (expected "
            f"{ARTIFACT_MAGIC!r})", "format"))
        return False
    if obj.get("version") != ARTIFACT_VERSION:
        diags.append(error(
            "V-ART-002", _STAGE,
            f"unsupported container version {obj.get('version')!r} "
            f"(this build reads version {ARTIFACT_VERSION})", "version"))
        return False
    ok = True
    for key, typ in _SCHEMA:
        if key not in obj:
            diags.append(error(
                "V-ART-003", _STAGE, "required section is missing", key))
            ok = False
        elif not isinstance(obj[key], typ):
            diags.append(error(
                "V-ART-003", _STAGE,
                f"section holds a {type(obj[key]).__name__}, expected "
                f"{typ.__name__}", key))
            ok = False
    if ok:
        for key in _MEMORY_PLAN_KEYS:
            if key not in obj["memory_plan"]:
                diags.append(error(
                    "V-ART-003", _STAGE, "memory plan is missing a field",
                    f"memory_plan.{key}"))
                ok = False
        for key in _SOC_KEYS:
            if key not in obj["soc"]:
                diags.append(error(
                    "V-ART-003", _STAGE, "platform record is missing a "
                    "field", f"soc.{key}"))
                ok = False
    return ok


def _check_config_fingerprint(obj: Dict[str, Any],
                              diags: List[Diagnostic]) -> None:
    """The stored config fingerprint must match the stored config."""
    from ..core.config import CompilerConfig

    try:
        config = CompilerConfig(**obj["config"])
    except TypeError as exc:
        diags.append(error(
            "V-ART-003", _STAGE,
            f"stored config does not construct a CompilerConfig ({exc})",
            "config"))
        return
    derived = config.fingerprint()
    if derived != obj["config_fingerprint"]:
        diags.append(error(
            "V-ART-004", _STAGE,
            f"stored config fingerprint {obj['config_fingerprint'][:12]} "
            f"disagrees with the stored config (fingerprints to "
            f"{derived[:12]}) — provenance is stale", "config_fingerprint"))


def _check_sections(obj: Dict[str, Any],
                    diags: List[Diagnostic]) -> None:
    """Chain/mapping/buffer sections vs the stored program (V-ART-006)."""
    steps = obj["steps"]
    num_steps = len(steps)
    step_names = set()
    buffer_names = set(obj["buffers"])
    plan = obj["memory_plan"]

    for i, rec in enumerate(steps):
        if not isinstance(rec, dict) or "name" not in rec:
            diags.append(error(
                "V-ART-003", _STAGE, "step record is not an object with a "
                "name", f"steps[{i}]"))
            return
        step_names.add(rec["name"])
        for name in list(rec.get("input_names", [])) \
                + [rec.get("output_name")]:
            if name not in buffer_names:
                diags.append(error(
                    "V-ART-006", _STAGE,
                    f"step {rec['name']!r} references buffer {name!r} "
                    "absent from the buffers section", f"steps[{i}]"))

    for table in ("offsets", "sizes", "lifetimes"):
        for name in plan.get(table, {}):
            if name not in buffer_names:
                diags.append(error(
                    "V-ART-006", _STAGE,
                    f"memory plan entry for unknown buffer {name!r}",
                    f"memory_plan.{table}"))

    for ci, chain in enumerate(obj.get("depthfirst", [])):
        start, length = chain.get("start", -1), chain.get("length", 0)
        loc = f"depthfirst[{ci}]"
        if start < 0 or length < 2 or start + length > num_steps:
            diags.append(error(
                "V-ART-006", _STAGE,
                f"chain [{start}, {start + length}) outside the "
                f"{num_steps}-step program", loc))
            continue
        per_layer = chain.get("per_layer_patch_bytes", [])
        if len(per_layer) != length:
            diags.append(error(
                "V-ART-006", _STAGE,
                f"chain covers {length} layers but records "
                f"{len(per_layer)} per-layer patch extents", loc))
        if any(steps[start + j].get("kind") != "accel"
               for j in range(length)):
            diags.append(error(
                "V-ART-006", _STAGE,
                "chain covers a non-accelerator step", loc))

    accel_targets = {"soc.digital", "soc.analog"}
    enabled = {t for t, on in (("soc.digital", obj["soc"].get(
        "enable_digital")), ("soc.analog", obj["soc"].get("enable_analog")))
        if on}
    for di, rec in enumerate(obj.get("decisions", [])):
        target = rec.get("target", "")
        loc = f"decisions[{di}]"
        if target in accel_targets and target not in enabled:
            diags.append(error(
                "V-ART-006", _STAGE,
                f"decision for {rec.get('layer_name')!r} picked disabled "
                f"accelerator {target!r}", loc))
        candidates = rec.get("candidates", [])
        if candidates and target not in candidates:
            diags.append(error(
                "V-ART-006", _STAGE,
                f"decision for {rec.get('layer_name')!r} picked "
                f"{target!r}, not among its candidates {candidates}", loc))


def _check_platform(obj: Dict[str, Any],
                    diags: List[Diagnostic]) -> None:
    """Platform provenance (V-ART-012): the platform record must be
    well-formed, name a platform registered in this process, and agree
    with the stored config's ``platform`` knob. Pre-registry artifacts
    carry no record and are implicitly stock-diana files.
    """
    from ..soc.registry import get_platform_spec
    from ..errors import PlatformError

    rec = obj.get("platform")
    if rec is None:
        return
    if not isinstance(rec, dict) or not isinstance(rec.get("name"), str):
        diags.append(error(
            "V-ART-012", _STAGE,
            "platform record must be an object with a string 'name'",
            "platform"))
        return
    name = rec["name"]
    try:
        get_platform_spec(name)
    except PlatformError as exc:
        diags.append(error(
            "V-ART-012", _STAGE,
            f"artifact targets platform {name!r}, which is not "
            f"registered in this process ({exc})", "platform"))
        return
    cfg_platform = obj.get("config", {}).get("platform", "diana")
    if cfg_platform != name:
        diags.append(error(
            "V-ART-012", _STAGE,
            f"platform record names {name!r} but the stored config was "
            f"built for {cfg_platform!r} — provenance is inconsistent",
            "platform"))


def check_artifact_dict(obj: Dict[str, Any],
                        deep: bool = True) -> List[Diagnostic]:
    """Run every artifact invariant check on a raw ``.dna`` dict.

    With ``deep=True`` the deployment is also reconstructed (content
    fingerprint verified, ``V-ART-005``) and the graph / memory-plan /
    compiled-plan checkers run over the reconstruction.
    """
    diags: List[Diagnostic] = []
    if not _check_schema(obj, diags):
        return diags
    _check_config_fingerprint(obj, diags)
    _check_platform(obj, diags)
    _check_sections(obj, diags)
    if not deep or diags:
        return diags

    from ..errors import ArtifactError
    from ..serve.artifact import artifact_from_dict

    try:
        art = artifact_from_dict(obj)
    except ArtifactError as exc:
        code = "V-ART-005" if "fingerprint" in str(exc) else "V-ART-003"
        diags.append(error(code, _STAGE, str(exc)))
        return diags

    if art.model.graph is not None:
        diags.extend(check_graph(art.model.graph, stage="artifact:graph"))
    diags.extend(check_memory_plan(
        art.model, l2_bytes=art.soc.params.l2_bytes,
        check_l2=art.config.check_l2))
    diags.extend(check_compiled_plan(
        art.model, params=art.soc.params, l1_budget=art.config.l1_budget,
        accelerators=list(art.soc.accelerators)))
    return diags


def check_native_sidecar(path: str, fingerprint: str) -> List[Diagnostic]:
    """Check the prebuilt native library next to a ``.dna``, if any.

    ``repro pack --prebuild`` (and native-mode serving) drop a
    ``native-<fp16>-abi<N>.so`` beside the artifact. A sidecar whose
    embedded build key disagrees with the artifact fingerprint would be
    silently rebuilt at load time — but on a deployment host that is a
    packaging mistake worth flagging before serving starts (V-ART-010).
    A sidecar that exists but cannot be loaded at all is only a warning
    (V-ART-011): the executor falls back to ``fast`` and stays correct.
    """
    import os

    from ..codegen.build import library_name, open_native_build_key

    diags: List[Diagnostic] = []
    lib = os.path.join(os.path.dirname(os.path.abspath(path)),
                       library_name(fingerprint))
    if not os.path.exists(lib):
        return diags
    try:
        build_key = open_native_build_key(lib)
    except Exception as exc:  # unloadable: degraded, not wrong
        diags.append(warning(
            "V-ART-011", _STAGE,
            f"native library sidecar cannot be loaded ({exc}); "
            f"native serving will rebuild or fall back to 'fast'",
            location=lib))
        return diags
    if build_key != fingerprint:
        diags.append(error(
            "V-ART-010", _STAGE,
            f"native library build key {build_key[:16]}... does not match "
            f"artifact fingerprint {fingerprint[:16]}...; the sidecar was "
            f"built from a different compiled model",
            location=lib))
    return diags


def check_artifact_file(path: str, deep: bool = True) -> List[Diagnostic]:
    """Read ``path`` and run :func:`check_artifact_dict` over it, plus
    the file-level native-sidecar check (:func:`check_native_sidecar`).
    """
    obj, diags = read_artifact_dict(path)
    if obj is None:
        return diags
    diags = diags + check_artifact_dict(obj, deep=deep)
    fingerprint = obj.get("fingerprint")
    if isinstance(fingerprint, str) and fingerprint:
        diags.extend(check_native_sidecar(path, fingerprint))
    return diags
