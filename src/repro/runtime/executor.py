"""Graph runtime: executes a compiled model on the simulated DIANA SoC.

For every step the executor produces both the *functional* result
(bit-exact integer numpy computation) and the *cycle cost* (DMA +
compute + overheads, per the cost models in :mod:`repro.soc`). Cycle
accounting is analytic — it depends only on the
:class:`~repro.dory.tiling_types.TilingSolution`, never on the tile
arithmetic — which permits two execution modes:

* ``"tiled"`` (default, verification mode) — accelerator layers are
  executed by actually iterating the DORY tiling: slicing halos,
  padding edge tiles, accumulating int32 partial sums across C blocks,
  writing back output tiles. Any tiling bug shows up as a numerical
  mismatch against the reference interpreter.
* ``"fast"`` — each accelerator layer's output is computed once with
  the full-layer kernel while the per-tile DMA/compute cycles are still
  accumulated from the tiling solution. Outputs are byte-identical and
  cycle counts exactly equal to tiled mode (int32 accumulation is
  order-independent; the cost path is literally the same code), at a
  fraction of the simulation wall-clock.
* ``"depthfirst"`` — the explicit mode for models compiled with fused
  :class:`~repro.core.program.DepthFirstChain` schedules; non-chain
  steps take the fast path.

Fused chains themselves execute patch by patch with halo recompute in
*every* mode — they are part of the compiled program (the memory plan
reserves only patch-sized interior slabs, so layer-by-layer execution
of a fused model would be unfaithful to its plan): only patch-sized
intermediates occupy L2 inside a chain, and the chain layers' cycles
price the recompute factor
(:func:`~repro.runtime.cost.accumulate_depthfirst_cost`). Outputs stay
byte-identical to layer-by-layer execution of the same graph.

Fast mode also supports batched (N > 1) inference for throughput
scenarios: the numeric kernels evaluate the whole batch in one pass
while cycles/L2 occupancy are modeled per inference (DIANA processes
samples sequentially; batching is a simulator-side vectorization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..core.program import (
    AccelStep, CompiledModel, CpuKernelStep, DepthFirstChain,
)
from ..dory.layer_spec import LayerSpec
from ..dory.tiling_types import Tile, TilingSolution
from ..errors import SimulationError
from ..extensions.depthfirst import _backward_ranges, _needed_input_range
from ..obs.trace import get_tracer, now_ns
from ..soc.perf import PerfCounters
from .. import numerics as K
from .cost import accumulate_accel_cost, accumulate_depthfirst_cost
from .reference import compile_plan

if TYPE_CHECKING:  # avoid a circular import at runtime
    from ..soc.platform import Platform

#: the functional execution modes of accelerator layers.
EXEC_MODES = ("tiled", "fast", "depthfirst", "native")

#: modes whose kernels evaluate a whole batch in one pass.
_BATCH_COVARIANT_MODES = ("fast", "depthfirst", "native")


@dataclass
class ExecutionResult:
    """Output value + performance counters of one inference."""

    output: np.ndarray
    perf: PerfCounters
    l2_peak_bytes: int

    @property
    def total_cycles(self) -> float:
        return self.perf.total_cycles

    @property
    def peak_cycles(self) -> float:
        return self.perf.peak_cycles


@dataclass
class BatchExecutionResult:
    """Outputs + per-inference counters of one batched (N > 1) run.

    ``perf`` holds the counters of a *single* inference — cycle cost is
    input-independent, so every sample costs the same; the SoC runs
    samples back to back and totals scale linearly with ``batch``.
    """

    outputs: np.ndarray
    perf: PerfCounters
    batch: int
    l2_peak_bytes: int

    @property
    def total_cycles(self) -> float:
        return self.batch * self.perf.total_cycles

    @property
    def peak_cycles(self) -> float:
        return self.batch * self.perf.peak_cycles


def _as_chw(arr: np.ndarray) -> np.ndarray:
    """Drop the batch dim: executor tiles operate on (C, H, W) views."""
    if arr.ndim == 4:
        return arr[0]
    if arr.ndim == 2:
        return arr[0][:, None, None]
    raise SimulationError(f"unsupported activation rank {arr.ndim}")


def _tile_input(x_chw: np.ndarray, tile: Tile) -> np.ndarray:
    """Slice + zero-pad the input slab one tile needs (NCHW, N=1)."""
    slab = x_chw[tile.c0:tile.c1, tile.iy0:tile.iy1, tile.ix0:tile.ix1]
    return K.pad_nchw(slab[None, ...],
                      ((tile.pad_top, tile.pad_bottom),
                       (tile.pad_left, tile.pad_right)))


def _alloc_output(spec: LayerSpec, batch: int = 1) -> np.ndarray:
    if spec.kind == "dense":
        return np.zeros((batch, spec.out_channels), dtype=np.int8)
    return np.zeros((batch, spec.out_channels, spec.oy, spec.ox),
                    dtype=np.int8)


def _compute_tile(accel, spec: LayerSpec, tile: Tile,
                  x_chw: np.ndarray, y_chw: Optional[np.ndarray],
                  out_chw: np.ndarray, pending: Dict[tuple, np.ndarray]):
    bias = spec.bias[tile.k0:tile.k1] if spec.bias is not None else None
    if spec.kind == "dense":
        w = spec.weight[tile.k0:tile.k1]
        res = accel.execute(spec, x_chw[:, 0, 0][None, ...], w, bias)
        out_chw[tile.k0:tile.k1, 0, 0] = res[0]
        return
    if spec.kind == "add":
        xa = x_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                   tile.ox0:tile.ox1][None, ...]
        yb = y_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                   tile.ox0:tile.ox1][None, ...]
        res = accel.execute(spec, xa, None, bias, y=yb)
        out_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                tile.ox0:tile.ox1] = res[0]
        return
    xin = _tile_input(x_chw, tile)
    if spec.is_depthwise:
        w = spec.weight[tile.k0:tile.k1]
        res = accel.execute(spec, xin, w, bias, padding=(0, 0))
        out_chw[tile.k0:tile.k1, tile.oy0:tile.oy1,
                tile.ox0:tile.ox1] = res[0]
        return
    # conv2d: accumulate int32 partial sums across C blocks, then
    # requantize once — exactly what the generated tile loop does.
    w = spec.weight[tile.k0:tile.k1, tile.c0:tile.c1]
    acc = accel.accumulate(spec, xin, w, padding=(0, 0))
    key = (tile.k0, tile.oy0, tile.ox0)
    if key in pending:
        acc = pending.pop(key) + acc
    if not tile.last_reduction:
        pending[key] = acc
        return
    res = accel.finalize(spec, acc, bias)
    out_chw[tile.k0:tile.k1, tile.oy0:tile.oy1, tile.ox0:tile.ox1] = res[0]


def execute_layer_tiled(accel, spec: LayerSpec, sol: TilingSolution,
                        x: np.ndarray,
                        y: Optional[np.ndarray] = None) -> np.ndarray:
    """Tile-by-tile functional execution of one accelerator layer (N=1).

    Exercises the full DORY schedule: halo slicing, edge-tile padding,
    K/C/row blocking and int32 partial-sum accumulation.
    """
    x_chw = _as_chw(x)
    y_chw = _as_chw(y) if y is not None else None
    out = _alloc_output(spec)
    out_chw = _as_chw(out)
    pending: Dict[tuple, np.ndarray] = {}  # int32 partial sums in L1
    for tile in sol.tiles():
        _compute_tile(accel, spec, tile, x_chw, y_chw, out_chw, pending)
    if pending:
        raise SimulationError(
            f"{spec.name}: {len(pending)} unfinished partial sums")
    return out


def execute_layer_fast(accel, spec: LayerSpec, x: np.ndarray,
                       y: Optional[np.ndarray] = None) -> np.ndarray:
    """Full-layer functional execution of one accelerator layer.

    One kernel call over the whole (possibly batched) input; bit-exact
    vs. :func:`execute_layer_tiled` because int32 accumulation is
    order-independent.
    """
    if spec.kind == "add":
        return accel.execute(spec, x, None, spec.bias, y=y)
    return accel.execute(spec, x, spec.weight, spec.bias)


def execute_chain_depth_first(accels, specs: List[LayerSpec], x: np.ndarray,
                              patch_grid,
                              skips: Optional[List[Optional[np.ndarray]]]
                              = None) -> np.ndarray:
    """Patch-based execution of one fused conv chain.

    For every output patch of the last layer, the required input window
    is traced back through the chain (exact halo propagation with
    boundary clipping), sliced, and the sub-pyramid recomputed with the
    *same* accelerator kernels layer-by-layer execution uses — so the
    result is byte-identical to running each layer in full. Residual
    zero padding is applied per layer: whatever part of a patch's halo
    falls outside the tensor is the convolution's own zero border.

    ``skips`` carries, per layer, the resident second operand of a
    residual ``add`` link (``None`` for conv layers): adds have
    identity geometry, so the skip is simply read at the patch's own
    region. Batch-covariant (the batch dimension rides through the
    kernels).
    """
    final = specs[-1]
    py, px = patch_grid
    if py < 1 or px < 1 or py > final.oy or px > final.ox:
        raise SimulationError(f"invalid patch grid {tuple(patch_grid)}")
    skips = skips or [None] * len(specs)
    out = np.zeros((x.shape[0], final.out_channels, final.oy, final.ox),
                   dtype=np.int8)
    for iy in range(py):
        y0, y1 = (final.oy * iy) // py, (final.oy * (iy + 1)) // py
        for ix in range(px):
            x0, x1 = (final.ox * ix) // px, (final.ox * (ix + 1)) // px
            if y0 == y1 or x0 == x1:
                continue
            ranges = _backward_ranges(specs, (y0, y1), (x0, x1))
            first = specs[0]
            in_y = _needed_input_range(
                ranges[0][0][0], ranges[0][0][1], first.strides[0],
                first.fy, first.padding[0], first.iy)
            in_x = _needed_input_range(
                ranges[0][1][0], ranges[0][1][1], first.strides[1],
                first.fx, first.padding[1], first.ix)
            patch = x[:, :, in_y[0]:in_y[1], in_x[0]:in_x[1]]
            for accel, spec, skip, ((ry0, ry1), (rx0, rx1)) in zip(
                    accels, specs, skips, ranges):
                if spec.kind == "add":
                    ywin = skip[:, :, ry0:ry1, rx0:rx1]
                    patch = accel.execute(spec, patch, None, spec.bias,
                                          y=ywin)
                    continue
                pt = max(0, -(ry0 * spec.strides[0] - spec.padding[0]))
                pb = max(0, (ry1 - 1) * spec.strides[0] + spec.fy
                         - spec.padding[0] - spec.iy)
                pl = max(0, -(rx0 * spec.strides[1] - spec.padding[1]))
                pr = max(0, (rx1 - 1) * spec.strides[1] + spec.fx
                         - spec.padding[1] - spec.ix)
                padded = K.pad_nchw(patch, ((pt, pb), (pl, pr)))
                patch = accel.execute(spec, padded, spec.weight, spec.bias,
                                      padding=(0, 0))
            out[:, :, y0:y1, x0:x1] = patch
    return out


class Executor:
    """Runs compiled models on a :class:`~repro.soc.platform.Platform`.

    ``exec_mode`` selects how accelerator layers are computed:
    ``"tiled"`` (default) executes every DORY tile and is the
    verification mode; ``"fast"`` computes each layer in one full-layer
    kernel call with identical outputs and cycle counts;
    ``"depthfirst"`` is the explicit mode for fused models (non-chain
    steps run fast). A model's
    :class:`~repro.core.program.DepthFirstChain` schedules execute
    patch by patch in every mode — they are part of the program, and
    their memory plan only holds patch-sized interior slabs.

    ``"native"`` executes accelerator layers through the compiled
    per-artifact shared library (see :mod:`repro.codegen.build`):
    covered steps run machine code, anything the library does not cover
    — CPU kernels, fused chains, or a host without a C toolchain —
    falls back per step to the ``fast`` interpreter. Outputs stay
    byte-identical and cycle accounting is unchanged (the cost model is
    analytic in the step, not in who computed the bytes).
    ``native_cache_dir`` overrides where the shared library is cached
    (default: ``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``; the
    serving layer passes the artifact's own directory).
    """

    def __init__(self, soc: "Platform", exec_mode: str = "tiled",
                 native_cache_dir: Optional[str] = None):
        if exec_mode not in EXEC_MODES:
            raise SimulationError(
                f"unknown exec_mode {exec_mode!r}; expected one of {EXEC_MODES}")
        self.soc = soc
        self.exec_mode = exec_mode
        self.native_cache_dir = native_cache_dir

    # -- public API -----------------------------------------------------------

    def run(self, model: CompiledModel,
            feeds: Dict[str, np.ndarray]) -> ExecutionResult:
        """Execute one inference; returns output + cycle accounting."""
        output, perf, l2_peak = self._execute(model, feeds, batch=None)
        return ExecutionResult(output=output, perf=perf,
                               l2_peak_bytes=l2_peak)

    def run_batch(self, model: CompiledModel,
                  feeds: Dict[str, np.ndarray]) -> BatchExecutionResult:
        """Execute a batch of N samples (feeds carry a leading batch dim).

        Sample ``i`` of the result is byte-identical to ``run`` on
        sample ``i`` alone. In fast mode the batch is evaluated in one
        vectorized pass; tiled mode loops sample by sample (every tile
        of every sample is executed).
        """
        batch = self._batch_size(model, feeds)
        if self.exec_mode in _BATCH_COVARIANT_MODES:
            # these modes use batch-covariant kernels (chains included)
            outputs, perf, l2_peak = self._execute(model, feeds, batch=batch)
            return BatchExecutionResult(outputs=outputs, perf=perf,
                                        batch=batch, l2_peak_bytes=l2_peak)
        outputs = []
        first: Optional[ExecutionResult] = None
        for i in range(batch):
            sample = {name: np.asarray(arr)[i:i + 1]
                      for name, arr in feeds.items()}
            res = self.run(model, sample)
            outputs.append(res.output)
            if first is None:
                first = res
        return BatchExecutionResult(
            outputs=np.concatenate(outputs, axis=0), perf=first.perf,
            batch=batch, l2_peak_bytes=first.l2_peak_bytes)

    # -- main loop -----------------------------------------------------------

    def _execute(self, model: CompiledModel, feeds: Dict[str, np.ndarray],
                 batch: Optional[int]):
        # the whole per-step tracing cost when disabled is this one
        # global read plus one `is not None` branch per step — the
        # guard benchmarks/bench_obs.py gates at <= 2% of fast-mode
        # inference wall-clock
        tracer = get_tracer()
        perf = PerfCounters()
        values: Dict[str, np.ndarray] = {}
        l2 = self.soc.fresh_l2()
        l2.place("static_image", 0, min(model.size.total, l2.capacity))
        arena_base = model.size.total
        l2_peak = model.size.total

        for name in model.input_names:
            if name not in feeds:
                raise SimulationError(f"missing input {name!r}")
            buf = model.buffers[name]
            arr = np.asarray(feeds[name], dtype=buf.ttype.dtype.to_numpy())
            expected = (tuple(buf.ttype.shape) if batch is None
                        else (batch,) + tuple(buf.ttype.shape)[1:])
            if arr.shape != expected:
                raise SimulationError(
                    f"input {name!r}: expected {expected}, "
                    f"got {arr.shape}")
            values[name] = arr
            self._place(l2, model, name, arena_base)

        # fused chains are part of the compiled *program*, not a
        # simulation knob: their memory plan reserves only patch-slab
        # interiors, so layer-by-layer execution of a fused model would
        # place full tensors at slab-packed offsets. They run patch-wise
        # in every mode; exec_mode selects how everything else runs.
        chains: Dict[int, DepthFirstChain] = {
            c.start: c for c in model.depthfirst_chains}

        last_use = self._last_use(model)
        native = None
        if self.exec_mode == "native":
            native = self._native_module(model)
            if native is not None and native.has_full_run and not chains:
                t0 = now_ns() if tracer is not None else 0
                full = self._native_full(model, values, batch, native)
                if full is not None:
                    # accounting replays the analytic per-step costs so
                    # perf/l2 match the interpreted modes byte for byte
                    l2_peak = max(l2_peak, self._account_steps(
                        model, perf, l2, arena_base, last_use))
                    if tracer is not None:
                        tracer.record(
                            "exec.native_full", t0, category="exec",
                            model=model.name, exec_mode=self.exec_mode,
                            steps=len(model.steps),
                            modeled_cycles=perf.total_cycles)
                    return full, perf, l2_peak
        idx = 0
        while idx < len(model.steps):
            chain = chains.get(idx)
            if chain is not None:
                if tracer is not None:
                    t0, n_rec = now_ns(), len(perf.records)
                l2_peak = max(l2_peak, self._run_chain(
                    model, chain, values, perf, l2, arena_base, last_use))
                if tracer is not None:
                    tracer.record(
                        "exec.chain", t0, category="exec",
                        start=chain.start, length=chain.length,
                        exec_mode=self.exec_mode,
                        modeled_cycles=sum(r.total_cycles for r
                                           in perf.records[n_rec:]))
                idx = chain.stop
                continue
            step = model.steps[idx]
            self._place(l2, model, step.output_name, arena_base)
            l2_peak = max(l2_peak, l2.high_water)
            args = [values[n] for n in step.input_names]
            t0 = now_ns() if tracer is not None else 0
            if isinstance(step, CpuKernelStep):
                values[step.output_name] = self._run_cpu(step, args, perf)
                target = "cpu"
            elif isinstance(step, AccelStep):
                values[step.output_name] = self._run_accel(
                    step, args, perf, idx=idx, native=native)
                target = step.accel_target
            else:
                raise SimulationError(f"unknown step {step!r}")
            if tracer is not None:
                tracer.record(
                    "exec.step", t0, category="exec", step=step.name,
                    target=target, exec_mode=self.exec_mode,
                    modeled_cycles=perf.records[-1].total_cycles)
            for name in step.input_names:
                if last_use.get(name) == idx and name != model.output_name:
                    l2.free(name)
            idx += 1

        return values[model.output_name], perf, l2_peak

    # -- helpers -----------------------------------------------------------------

    def _batch_size(self, model: CompiledModel,
                    feeds: Dict[str, np.ndarray]) -> int:
        batch = None
        for name in model.input_names:
            if name not in feeds:
                raise SimulationError(f"missing input {name!r}")
            arr = np.asarray(feeds[name])
            shape = tuple(model.buffers[name].ttype.shape)
            if arr.ndim != len(shape) or arr.shape[1:] != shape[1:]:
                raise SimulationError(
                    f"input {name!r}: expected (N,) + {shape[1:]}, "
                    f"got {arr.shape}")
            if batch is None:
                batch = arr.shape[0]
            elif arr.shape[0] != batch:
                raise SimulationError(
                    f"input {name!r}: inconsistent batch "
                    f"({arr.shape[0]} vs {batch})")
        if not batch:
            raise SimulationError("empty batch")
        return batch

    def _native_module(self, model: CompiledModel):
        """Build-or-load the model's native library, memoized on the
        model object (``None`` — no toolchain / nothing to cover — is
        memoized too, so a host without a compiler pays the probe
        once, not per inference)."""
        cached = getattr(model, "_native_mod_cache", None)
        if cached is not None and cached[0] == self.native_cache_dir:
            return cached[1]
        from ..codegen.build import load_native_module

        mod = load_native_module(model, self.native_cache_dir)
        model._native_mod_cache = (self.native_cache_dir, mod)
        return mod

    def _native_full(self, model: CompiledModel, values,
                     batch: Optional[int], native):
        """Whole-network native execution (one C call over the planned
        arena); returns the reshaped output or ``None`` to fall back to
        the step loop."""
        n = 1 if batch is None else batch
        ins = []
        for name in model.input_names:
            arr = values[name]
            if arr.dtype != np.int8:
                return None
            ins.append(arr)
        out_t = model.buffers[model.output_name].ttype
        flat = native.run_full(ins, out_t.num_elements, n)
        if flat is None:
            return None
        shape = (tuple(out_t.shape) if batch is None
                 else (batch,) + tuple(out_t.shape)[1:])
        return flat.reshape(shape)

    def _account_steps(self, model: CompiledModel, perf: PerfCounters,
                       l2, arena_base: int, last_use) -> int:
        """Replay the cycle/L2 accounting of the step loop without
        executing kernels — used after a whole-network native run.
        Identical charges by construction: the cost model is analytic
        in (step, soc), never in activation values."""
        l2_peak = model.size.total
        for idx, step in enumerate(model.steps):
            self._place(l2, model, step.output_name, arena_base)
            l2_peak = max(l2_peak, l2.high_water)
            rec = perf.start_kernel(step.name, step.accel_target,
                                    macs=step.spec.macs())
            self._accel_cost(step, rec)
            for name in step.input_names:
                if last_use.get(name) == idx and name != model.output_name:
                    l2.free(name)
        return l2_peak

    def _last_use(self, model: CompiledModel) -> Dict[str, int]:
        cached = getattr(model, "_last_use_cache", None)
        if cached is not None:
            return cached
        out: Dict[str, int] = {}
        for idx, step in enumerate(model.steps):
            for name in step.input_names:
                out[name] = idx
        model._last_use_cache = out
        return out

    def _place(self, l2, model: CompiledModel, name: str, base: int,
               plan_sized: bool = False):
        offset = model.memory_plan.offsets.get(name)
        if offset is None:
            return
        # depth-first models plan chain intermediates at patch-slab
        # size; layer-by-layer modes materialize the full tensor, so
        # they account (and enforce) the full buffer footprint.
        size = (model.memory_plan.sizes.get(name) if plan_sized else None)
        if size is None:
            size = model.buffers[name].size_bytes
        l2.place(name, base + offset, size)

    def _run_chain(self, model: CompiledModel, chain: DepthFirstChain,
                   values, perf: PerfCounters, l2, arena_base: int,
                   last_use) -> int:
        """Execute one fused depth-first chain; returns its L2 peak.

        L2 accounting mirrors the patch schedule: the chain input and
        output stay resident for the whole chain while interior slabs
        ping-pong (slab j coexists only with slab j-1), exactly the
        co-residency the compile-time plan packed.
        """
        steps = model.steps[chain.start:chain.stop]
        for step in steps:
            if not isinstance(step, AccelStep):
                raise SimulationError(
                    f"{step.name}: depth-first chain over a non-"
                    "accelerator step")
        final = steps[-1]
        self._place(l2, model, final.output_name, arena_base, True)
        peak = l2.high_water
        prev = None
        for step in steps[:-1]:
            self._place(l2, model, step.output_name, arena_base, True)
            peak = max(peak, l2.high_water)
            if prev is not None:
                l2.free(prev)
            prev = step.output_name
        if prev is not None:
            l2.free(prev)

        for step, ratio in zip(steps, chain.per_layer_recompute):
            rec = perf.start_kernel(step.name, step.accel_target,
                                    macs=step.spec.macs())
            self._chain_cost(step, rec, ratio, chain.num_patches)

        produced = {s.output_name for s in steps}
        skips: List[Optional[np.ndarray]] = []
        for j, step in enumerate(steps):
            if step.spec.kind != "add":
                skips.append(None)
                continue
            tail = steps[j - 1].output_name
            ins = step.input_names
            skips.append(values[ins[0] if ins[1] == tail else ins[1]])
        x = values[steps[0].input_names[0]]
        out = execute_chain_depth_first(
            [self.soc.accelerator(s.accel_target) for s in steps],
            [s.spec for s in steps], x, chain.patch_grid, skips=skips)
        values[final.output_name] = out

        stop = chain.stop - 1
        for step in steps:
            for name in step.input_names:
                if (name not in produced
                        and last_use.get(name, -1) <= stop
                        and name != model.output_name):
                    l2.free(name)
        return peak

    def _chain_cost(self, step: AccelStep, rec, ratio: float,
                    num_patches: int):
        """Depth-first cycle charge with the same replay memo as
        :meth:`_accel_cost` (the charge is analytic in the step)."""
        accel = self.soc.accelerator(step.accel_target)
        params = self.soc.params
        cached = getattr(step, "_df_cost_cache", None)
        if cached is None or cached[0] is not accel or cached[1] is not params:
            accumulate_depthfirst_cost(rec, accel, step.spec, step.tiling,
                                       params, ratio, num_patches)
            step._df_cost_cache = (accel, params, dict(rec.cycles),
                                   rec.num_tiles)
            return
        _, _, cycles, num_tiles = cached
        rec.cycles.update(cycles)
        rec.num_tiles = num_tiles

    def _run_cpu(self, step: CpuKernelStep, args, perf: PerfCounters):
        body = step.body
        # the CPU cost model is analytic in the body graph: compute the
        # MAC count and kernel cycles once per step, replay afterwards
        # (strong-ref identity check, same rationale as _accel_cost)
        cpu = self.soc.cpu
        cached = getattr(step, "_cost_cache", None)
        if cached is None or cached[0] is not cpu:
            cached = (cpu, body.total_macs(), cpu.kernel_cycles(body))
            step._cost_cache = cached
        _, macs, cpu_cycles = cached
        rec = perf.start_kernel(step.name, "cpu", macs=macs)
        rec.add("cpu_compute", cpu_cycles)
        rec.add("runtime", self.soc.params.runtime_call_overhead)
        return compile_plan(body).run_args(*args)

    # -- accelerator execution ------------------------------------------------

    def _accel_cost(self, step: AccelStep, rec):
        """Charge the (static) cycle cost of one accelerator step.

        The cost model is analytic in (spec, tiling, accelerator,
        params) — it never looks at activation values — so the per-tile
        accounting loop runs once per step and is replayed on later
        inferences by copying the identical float values.
        """
        accel = self.soc.accelerator(step.accel_target)
        params = self.soc.params
        cached = getattr(step, "_cost_cache", None)
        # identity check against strong refs: a model re-run on a
        # different SoC / params recomputes instead of replaying
        if cached is None or cached[0] is not accel or cached[1] is not params:
            accumulate_accel_cost(rec, accel, step.spec, step.tiling, params)
            step._cost_cache = (accel, params, dict(rec.cycles),
                                rec.num_tiles)
            return
        _, _, cycles, num_tiles = cached
        rec.cycles.update(cycles)
        rec.num_tiles = num_tiles

    def _run_accel(self, step: AccelStep, args, perf: PerfCounters,
                   idx: Optional[int] = None, native=None):
        spec, sol = step.spec, step.tiling
        accel = self.soc.accelerator(step.accel_target)
        rec = perf.start_kernel(step.name, step.accel_target, macs=spec.macs())
        self._accel_cost(step, rec)

        x = args[0]
        y = args[1] if spec.kind == "add" else None
        if native is not None and idx is not None:
            out = native.run_step(idx, spec, x, y)
            if out is not None:
                return out
            # uncovered kind / geometry surprise: fast interpreter
        if self.exec_mode in ("fast", "depthfirst", "native"):
            # non-chain steps of a depth-first model run as full layers
            return execute_layer_fast(accel, spec, x, y)
        return execute_layer_tiled(accel, spec, sol, x, y)
