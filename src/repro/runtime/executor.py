"""Graph runtime: executes a compiled model on the simulated DIANA SoC.

For every step the executor produces both the *functional* result
(bit-exact integer numpy computation, tile by tile for accelerator
layers) and the *cycle cost* (DMA + compute + overheads, per the cost
models in :mod:`repro.soc`). Because accelerator layers are executed by
actually iterating the DORY tiling — slicing halos, padding edge tiles,
writing back output tiles — any tiling bug shows up as a numerical
mismatch against the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..core.program import AccelStep, CompiledModel, CpuKernelStep
from ..dory.layer_spec import LayerSpec
from ..dory.tiling_types import Tile, TilingSolution
from ..errors import SimulationError
from ..soc.perf import PerfCounters
from .cost import accumulate_accel_cost
from .reference import run_reference

if TYPE_CHECKING:  # avoid a circular import at runtime
    from ..soc.diana import DianaSoC


@dataclass
class ExecutionResult:
    """Output value + performance counters of one inference."""

    output: np.ndarray
    perf: PerfCounters
    l2_peak_bytes: int

    @property
    def total_cycles(self) -> float:
        return self.perf.total_cycles

    @property
    def peak_cycles(self) -> float:
        return self.perf.peak_cycles


def _as_chw(arr: np.ndarray) -> np.ndarray:
    """Drop the batch dim: executor tiles operate on (C, H, W) views."""
    if arr.ndim == 4:
        return arr[0]
    if arr.ndim == 2:
        return arr[0][:, None, None]
    raise SimulationError(f"unsupported activation rank {arr.ndim}")


def _tile_input(x_chw: np.ndarray, spec: LayerSpec, tile: Tile) -> np.ndarray:
    """Slice + zero-pad the input slab one tile needs (NCHW, N=1)."""
    slab = x_chw[tile.c0:tile.c1, tile.iy0:tile.iy1, tile.ix0:tile.ix1]
    if tile.pad_top or tile.pad_bottom or tile.pad_left or tile.pad_right:
        slab = np.pad(
            slab,
            ((0, 0), (tile.pad_top, tile.pad_bottom),
             (tile.pad_left, tile.pad_right)),
            mode="constant",
        )
    return slab[None, ...]


class Executor:
    """Runs compiled models on a :class:`~repro.soc.diana.DianaSoC`."""

    def __init__(self, soc: "DianaSoC"):
        self.soc = soc

    # -- public API -----------------------------------------------------------

    def run(self, model: CompiledModel,
            feeds: Dict[str, np.ndarray]) -> ExecutionResult:
        """Execute one inference; returns output + cycle accounting."""
        perf = PerfCounters()
        values: Dict[str, np.ndarray] = {}
        l2 = self.soc.fresh_l2()
        l2.place("static_image", 0, min(model.size.total, l2.capacity))
        arena_base = model.size.total
        l2_peak = model.size.total

        for name in model.input_names:
            if name not in feeds:
                raise SimulationError(f"missing input {name!r}")
            buf = model.buffers[name]
            arr = np.asarray(feeds[name], dtype=buf.ttype.dtype.to_numpy())
            if arr.shape != buf.ttype.shape:
                raise SimulationError(
                    f"input {name!r}: expected {buf.ttype.shape}, "
                    f"got {arr.shape}")
            values[name] = arr
            self._place(l2, model, name, arena_base)

        last_use = self._last_use(model)
        for idx, step in enumerate(model.steps):
            self._place(l2, model, step.output_name, arena_base)
            l2_peak = max(l2_peak, l2.high_water)
            args = [values[n] for n in step.input_names]
            if isinstance(step, CpuKernelStep):
                values[step.output_name] = self._run_cpu(step, args, perf)
            elif isinstance(step, AccelStep):
                values[step.output_name] = self._run_accel(step, args, perf)
            else:
                raise SimulationError(f"unknown step {step!r}")
            for name in step.input_names:
                if last_use.get(name) == idx and name != model.output_name:
                    l2.free(name)

        return ExecutionResult(
            output=values[model.output_name], perf=perf, l2_peak_bytes=l2_peak)

    # -- helpers -----------------------------------------------------------------

    def _last_use(self, model: CompiledModel) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for idx, step in enumerate(model.steps):
            for name in step.input_names:
                out[name] = idx
        return out

    def _place(self, l2, model: CompiledModel, name: str, base: int):
        offset = model.memory_plan.offsets.get(name)
        if offset is None:
            return
        l2.place(name, base + offset, model.buffers[name].size_bytes)

    def _run_cpu(self, step: CpuKernelStep, args, perf: PerfCounters):
        body = step.body
        rec = perf.start_kernel(step.name, "cpu", macs=body.total_macs())
        rec.add("cpu_compute", self.soc.cpu.kernel_cycles(body))
        rec.add("runtime", self.soc.params.runtime_call_overhead)
        feeds = {p.name: a for p, a in zip(body.inputs, args)}
        return run_reference(body, feeds)

    # -- tiled accelerator execution ------------------------------------------------

    def _run_accel(self, step: AccelStep, args, perf: PerfCounters):
        spec, sol = step.spec, step.tiling
        accel = self.soc.accelerator(step.accel_target)
        rec = perf.start_kernel(step.name, step.accel_target, macs=spec.macs())
        accumulate_accel_cost(rec, accel, spec, sol, self.soc.params)

        x = args[0]
        y = args[1] if spec.kind == "add" else None
        x_chw = _as_chw(x)
        y_chw = _as_chw(y) if y is not None else None

        out = self._alloc_output(spec, step)
        out_chw = _as_chw(out)
        pending: Dict[tuple, np.ndarray] = {}  # int32 partial sums in L1
        for tile in sol.tiles():
            self._compute_tile(accel, spec, tile, x_chw, y_chw, out_chw,
                               pending)
        if pending:
            raise SimulationError(
                f"{step.name}: {len(pending)} unfinished partial sums")
        return out

    def _alloc_output(self, spec: LayerSpec, step: AccelStep) -> np.ndarray:
        if spec.kind == "dense":
            return np.zeros((1, spec.out_channels), dtype=np.int8)
        return np.zeros((1, spec.out_channels, spec.oy, spec.ox),
                        dtype=np.int8)

    def _compute_tile(self, accel, spec: LayerSpec, tile: Tile,
                      x_chw: np.ndarray, y_chw: Optional[np.ndarray],
                      out_chw: np.ndarray, pending: Dict[tuple, np.ndarray]):
        bias = spec.bias[tile.k0:tile.k1] if spec.bias is not None else None
        if spec.kind == "dense":
            w = spec.weight[tile.k0:tile.k1]
            res = accel.execute(spec, x_chw[:, 0, 0][None, ...], w, bias)
            out_chw[tile.k0:tile.k1, 0, 0] = res[0]
            return
        if spec.kind == "add":
            xa = x_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                       tile.ox0:tile.ox1][None, ...]
            yb = y_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                       tile.ox0:tile.ox1][None, ...]
            res = accel.execute(spec, xa, None, bias, y=yb)
            out_chw[tile.c0:tile.c1, tile.oy0:tile.oy1,
                    tile.ox0:tile.ox1] = res[0]
            return
        xin = _tile_input(x_chw, spec, tile)
        if spec.is_depthwise:
            w = spec.weight[tile.k0:tile.k1]
            res = accel.execute(spec, xin, w, bias, padding=(0, 0))
            out_chw[tile.k0:tile.k1, tile.oy0:tile.oy1,
                    tile.ox0:tile.ox1] = res[0]
            return
        # conv2d: accumulate int32 partial sums across C blocks, then
        # requantize once — exactly what the generated tile loop does.
        w = spec.weight[tile.k0:tile.k1, tile.c0:tile.c1]
        acc = accel.accumulate(spec, xin, w, padding=(0, 0))
        key = (tile.k0, tile.oy0, tile.ox0)
        if key in pending:
            acc = pending.pop(key) + acc
        if not tile.last_reduction:
            pending[key] = acc
            return
        res = accel.finalize(spec, acc, bias)
        out_chw[tile.k0:tile.k1, tile.oy0:tile.oy1, tile.ox0:tile.ox1] = res[0]
