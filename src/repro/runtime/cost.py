"""Cycle accounting for tiled accelerator layers.

Shared between the full-network :class:`~repro.runtime.executor.Executor`
and the single-layer evaluations of Fig. 4 / Fig. 5, so every benchmark
and test charges exactly the same cost model:

* ``weight_dma`` — filling the digital weight memory per output-channel
  block / programming the analog macro once per layer,
* ``act_dma`` — L2<->L1 tile transfers (chunked, stride-aware),
* ``accel_compute`` — PE-array / macro busy cycles + per-job handshake,
* ``tile_loop`` + ``runtime`` — host-side HTVM overheads (the
  difference between the paper's "Peak" and "HTVM" measurements).
"""

from __future__ import annotations

from ..dory.layer_spec import LayerSpec
from ..dory.tiling_types import TilingSolution
from ..soc.dma import tile_transfer_cycles
from ..soc.params import DianaParams
from ..soc.perf import KernelRecord, PerfCounters


def accumulate_accel_cost(rec: KernelRecord, accel, spec: LayerSpec,
                          sol: TilingSolution, params: DianaParams):
    """Charge all cycle categories for one tiled accelerator layer.

    Activation DMA is double-buffered (DORY ping-pongs the L1 buffers),
    so only the part of the transfer stream that compute cannot hide is
    charged: the first tile's input fill, the last tile's drain, and
    any residual when the layer is DMA-bound.
    """
    rec.add("runtime", params.runtime_call_overhead)

    # weight-stationary cores (the AiMC macro) program their array once
    # per layer; weight-streaming cores (digital-style, recognised by a
    # per-tile ``weight_tile_bytes`` method) refill per channel block.
    weight_streaming = hasattr(accel, "weight_tile_bytes")
    if not weight_streaming and spec.kind != "add":
        rec.add("weight_dma", accel.weight_load_cycles(
            spec, spec.in_channels, spec.out_channels))

    in_shape = (spec.in_channels, spec.iy, spec.ix)
    out_shape = (spec.out_channels, spec.oy, spec.ox)
    tiles = sol.tiles()
    rec.num_tiles = len(tiles)
    current_block = None
    in_dma = []
    out_dma = []
    compute = []
    for tile in tiles:
        k_t, oy_t, ox_t = tile.out_shape
        c_t = tile.c1 - tile.c0
        if (weight_streaming and spec.kind != "add"
                and (tile.k0, tile.c0) != current_block):
            current_block = (tile.k0, tile.c0)
            w_bytes = accel.weight_tile_bytes(spec, c_t, k_t)
            rec.add("weight_dma", accel.weight_load_cycles(w_bytes))
        operands = 2 if spec.kind == "add" else 1
        in_dma.append(operands * tile_transfer_cycles(
            in_shape, tile.in_shape, 1.0, params))
        # partial-sum blocks keep their int32 tile in L1: write-back
        # happens only after the last reduction block.
        out_dma.append(tile_transfer_cycles(
            out_shape, tile.out_shape, 1.0, params)
            if tile.last_reduction else 0.0)
        compute.append(accel.compute_cycles(spec, c_t, k_t, oy_t, ox_t)
                       + accel.job_overhead)
        rec.add("tile_loop", params.tile_loop_overhead)

    rec.add("accel_compute", sum(compute))
    # double-buffered pipeline: prologue + epilogue + DMA-bound residual
    hidden_budget = sum(compute)
    streamed = sum(in_dma) + sum(out_dma) - in_dma[0] - out_dma[-1]
    stall = in_dma[0] + out_dma[-1] + max(0.0, streamed - hidden_budget)
    rec.add("act_dma", stall)


def cost_layer(spec: LayerSpec, sol: TilingSolution, accel,
               params: DianaParams) -> KernelRecord:
    """Stand-alone cost of one layer under a given tiling."""
    perf = PerfCounters()
    rec = perf.start_kernel(spec.name, accel.name, macs=spec.macs())
    accumulate_accel_cost(rec, accel, spec, sol, params)
    return rec


def accumulate_depthfirst_cost(rec: KernelRecord, accel, spec: LayerSpec,
                               sol: TilingSolution, params: DianaParams,
                               recompute_ratio: float, num_patches: int):
    """Charge one layer of a fused depth-first chain.

    The layer still executes its DORY tiling per patch, so the base
    charge is the standard :func:`accumulate_accel_cost`; the halo
    overlap between patches is then priced by scaling the compute and
    activation-DMA categories with the layer's exact patched/nominal
    MAC ratio. Weights are charged once — chain layers are early
    high-resolution stages whose filters stay resident across patches —
    and each patch pays one host-side loop iteration on top.
    """
    accumulate_accel_cost(rec, accel, spec, sol, params)
    extra = max(0.0, recompute_ratio - 1.0)
    if extra:
        rec.add("accel_compute", extra * rec.cycles.get("accel_compute", 0.0))
        rec.add("act_dma", extra * rec.cycles.get("act_dma", 0.0))
    rec.add("tile_loop", num_patches * params.tile_loop_overhead)


def cost_layer_depthfirst(spec: LayerSpec, sol: TilingSolution, accel,
                          params: DianaParams, recompute_ratio: float,
                          num_patches: int) -> KernelRecord:
    """Stand-alone depth-first cost of one chain layer (mapping pricing)."""
    perf = PerfCounters()
    rec = perf.start_kernel(spec.name, accel.name, macs=spec.macs())
    accumulate_depthfirst_cost(rec, accel, spec, sol, params,
                               recompute_ratio, num_patches)
    return rec
