"""Bit-exact reference interpreter for IR graphs.

This is the golden model: it walks the graph in topological order and
evaluates every operator with the shared numpy kernels in
:mod:`repro.runtime.numerics`. Compiled programs (CPU-fused, tiled
digital, tiled analog) must produce byte-identical outputs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import SimulationError
from ..ir import Call, Composite, Constant, Graph, Node, Var
from .. import numerics as K


def _eval_call(node: Call, args) -> np.ndarray:
    op = node.op
    a = node.attrs
    if op == "nn.conv2d":
        return K.conv2d(args[0], args[1], a["strides"], a["padding"], a["groups"])
    if op == "nn.dense":
        return K.dense(args[0], args[1])
    if op == "nn.bias_add":
        return K.bias_add(args[0], args[1], a["axis"])
    if op == "right_shift":
        return K.right_shift(args[0], int(args[1].reshape(-1)[0]), a["rounding"])
    if op == "clip":
        return K.clip(args[0], a["a_min"], a["a_max"])
    if op == "cast":
        return K.cast(args[0], node.dtype.to_numpy())
    if op == "nn.relu":
        return K.relu(args[0])
    if op == "add":
        out_dt = None
        if a.get("out_dtype") is not None:
            out_dt = node.dtype.to_numpy()
        return K.add(args[0], args[1], out_dt)
    if op == "nn.avg_pool2d":
        return K.avg_pool2d(args[0], a["pool_size"], a["strides"], a["padding"])
    if op == "nn.max_pool2d":
        return K.max_pool2d(args[0], a["pool_size"], a["strides"], a["padding"])
    if op == "nn.global_avg_pool2d":
        return K.global_avg_pool2d(args[0])
    if op == "nn.softmax":
        return K.softmax(args[0], a["axis"])
    if op == "reshape":
        return args[0].reshape(node.shape)
    if op == "nn.batch_flatten":
        return args[0].reshape(node.shape)
    if op == "nn.pad":
        return np.pad(args[0], a["pad_width"], constant_values=a["pad_value"])
    if op == "concatenate":
        return K.concatenate(args[0], args[1], a["axis"])
    if op == "nn.sigmoid_lut":
        return K.sigmoid_lut(args[0], a["scale_bits"])
    if op == "nn.tanh_lut":
        return K.tanh_lut(args[0], a["scale_bits"])
    raise SimulationError(f"reference executor: unhandled op {op}")


def run_reference(graph: Graph, feeds: Dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate ``graph`` on named input arrays; returns the output array."""
    values: Dict[int, np.ndarray] = {}
    for var in graph.inputs:
        if var.name not in feeds:
            raise SimulationError(f"missing input {var.name!r}")
        arr = np.asarray(feeds[var.name], dtype=var.dtype.to_numpy())
        if arr.shape != var.shape:
            raise SimulationError(
                f"input {var.name!r}: expected shape {var.shape}, got {arr.shape}"
            )
        values[var.node_id] = arr

    for node in graph.topo_order():
        if isinstance(node, Var):
            continue
        if isinstance(node, Constant):
            values[node.node_id] = node.value.data
        elif isinstance(node, Call):
            args = [values[i.node_id] for i in node.inputs]
            values[node.node_id] = _eval_call(node, args)
        elif isinstance(node, Composite):
            args = [values[i.node_id] for i in node.inputs]
            sub_feeds = {
                p.name: a for p, a in zip(node.body.inputs, args)
            }
            values[node.node_id] = run_reference(node.body, sub_feeds)
        else:
            raise SimulationError(f"unhandled node {node!r}")
    return values[graph.output.node_id]


def random_inputs(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Seeded random feeds spanning each input dtype's logical range."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for var in graph.inputs:
        dt = var.dtype
        if dt.name == "float32":
            feeds[var.name] = rng.standard_normal(var.shape).astype(np.float32)
        else:
            feeds[var.name] = rng.integers(
                dt.min_value, dt.max_value + 1, size=var.shape
            ).astype(dt.to_numpy())
    return feeds
