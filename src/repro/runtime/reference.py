"""Bit-exact reference interpreter for IR graphs.

This is the golden model: every operator is evaluated with the shared
numpy kernels in :mod:`repro.numerics`. Compiled programs (CPU-fused,
tiled digital, tiled analog) must produce byte-identical outputs.

Rather than re-walking the graph and re-dispatching ops per inference,
the interpreter *lowers* a :class:`~repro.ir.graph.Graph` once into a
:class:`CompiledPlan` — a flat instruction list over dense value slots
with pre-resolved attributes, pre-bound constant scalars (e.g. the
``right_shift`` amount) and prefetched constant tensors. The plan is
cached on the graph instance, so repeated inferences (sweeps, batched
throughput runs, the executor's fused CPU kernels) skip traversal and
dispatch entirely.

All kernels are batch-covariant, so a plan compiled from a batch-1
graph also evaluates batched (N > 1) feeds; see
:func:`run_reference_batched`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..ir import Call, Composite, Constant, Graph, Var
from .. import numerics as K


def _scalar_int(arr) -> int:
    return int(np.asarray(arr).reshape(-1)[0])


# -- per-op lowering -----------------------------------------------------------
#
# Each entry turns one Call node into a closure over its pre-resolved
# attributes; the closure takes the runtime input arrays positionally.

def _c_conv2d(node: Call) -> Callable:
    strides = node.attrs["strides"]
    padding = node.attrs["padding"]
    groups = node.attrs["groups"]
    return lambda x, w: K.conv2d(x, w, strides, padding, groups)


def _c_dense(node: Call) -> Callable:
    return K.dense


def _c_bias_add(node: Call) -> Callable:
    axis = node.attrs["axis"]
    return lambda x, b: K.bias_add(x, b, axis)


def _c_right_shift(node: Call) -> Callable:
    rounding = node.attrs["rounding"]
    return lambda x, s: K.right_shift(x, _scalar_int(s), rounding)


def _c_clip(node: Call) -> Callable:
    a_min, a_max = node.attrs["a_min"], node.attrs["a_max"]
    return lambda x: K.clip(x, a_min, a_max)


def _c_cast(node: Call) -> Callable:
    np_dtype = node.dtype.to_numpy()
    return lambda x: K.cast(x, np_dtype)


def _c_relu(node: Call) -> Callable:
    return K.relu


def _c_add(node: Call) -> Callable:
    out_dt = None
    if node.attrs.get("out_dtype") is not None:
        out_dt = node.dtype.to_numpy()
    return lambda x, y: K.add(x, y, out_dt)


def _c_avg_pool2d(node: Call) -> Callable:
    a = node.attrs
    pool, strides, padding = a["pool_size"], a["strides"], a["padding"]
    return lambda x: K.avg_pool2d(x, pool, strides, padding)


def _c_max_pool2d(node: Call) -> Callable:
    a = node.attrs
    pool, strides, padding = a["pool_size"], a["strides"], a["padding"]
    return lambda x: K.max_pool2d(x, pool, strides, padding)


def _c_global_avg_pool2d(node: Call) -> Callable:
    return K.global_avg_pool2d


def _c_softmax(node: Call) -> Callable:
    axis = node.attrs["axis"]
    return lambda x: K.softmax(x, axis)


def _c_reshape(node: Call) -> Callable:
    shape = tuple(node.shape)
    tail = shape[1:]

    def fn(x):
        if x.shape[0] == shape[0]:
            return x.reshape(shape)
        # batched feed: the leading dim is N, not the graph's static 1
        return x.reshape((x.shape[0],) + tail)

    return fn


def _c_pad(node: Call) -> Callable:
    pad_width, pad_value = node.attrs["pad_width"], node.attrs["pad_value"]
    return lambda x: np.pad(x, pad_width, constant_values=pad_value)


def _c_concatenate(node: Call) -> Callable:
    axis = node.attrs["axis"]
    return lambda x, y: K.concatenate(x, y, axis)


def _c_sigmoid_lut(node: Call) -> Callable:
    scale_bits = node.attrs["scale_bits"]
    return lambda x: K.sigmoid_lut(x, scale_bits)


def _c_tanh_lut(node: Call) -> Callable:
    scale_bits = node.attrs["scale_bits"]
    return lambda x: K.tanh_lut(x, scale_bits)


#: op name -> closure compiler (dict dispatch replaces the old if-chain).
_OP_COMPILERS: Dict[str, Callable[[Call], Callable]] = {
    "nn.conv2d": _c_conv2d,
    "nn.dense": _c_dense,
    "nn.bias_add": _c_bias_add,
    "right_shift": _c_right_shift,
    "clip": _c_clip,
    "cast": _c_cast,
    "nn.relu": _c_relu,
    "add": _c_add,
    "nn.avg_pool2d": _c_avg_pool2d,
    "nn.max_pool2d": _c_max_pool2d,
    "nn.global_avg_pool2d": _c_global_avg_pool2d,
    "nn.softmax": _c_softmax,
    "reshape": _c_reshape,
    "nn.batch_flatten": _c_reshape,
    "nn.pad": _c_pad,
    "concatenate": _c_concatenate,
    "nn.sigmoid_lut": _c_sigmoid_lut,
    "nn.tanh_lut": _c_tanh_lut,
}


def _compile_call(node: Call) -> Callable:
    try:
        compiler = _OP_COMPILERS[node.op]
    except KeyError:
        raise SimulationError(
            f"reference executor: unhandled op {node.op}") from None
    return compiler(node)


def _eval_call(node: Call, args) -> np.ndarray:
    """Evaluate one call node (compile-and-run; used by constant folding)."""
    return _compile_call(node)(*args)


# -- plan compiler ----------------------------------------------------------------


class CompiledPlan:
    """A :class:`Graph` lowered to a flat instruction list.

    Instructions are ``(kernel, arg_slots, out_slot)`` triples over a
    dense value-slot array. Constants are prefetched into the slot
    template once at compile time, and constant scalars consumed by
    ``right_shift`` are folded straight into the kernel closure.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        slot_of: Dict[int, int] = {}
        template: List[Optional[np.ndarray]] = []

        def new_slot(node) -> int:
            slot = len(template)
            slot_of[node.node_id] = slot
            template.append(None)
            return slot

        #: (name, slot, static shape, numpy dtype) per graph input, in
        #: *declared* order — run_args binds positionally against this,
        #: and every declared input is required even if unused.
        self.input_slots: List[Tuple[str, int, tuple, np.dtype]] = []
        for var in graph.inputs:
            slot = new_slot(var)
            self.input_slots.append(
                (var.name, slot, tuple(var.shape), var.dtype.to_numpy()))
        instrs: List[Tuple[Callable, Tuple[int, ...], int]] = []
        for node in graph.topo_order():
            if isinstance(node, Var):
                continue  # pre-slotted above (graph.validate forbids free vars)
            elif isinstance(node, Constant):
                template[new_slot(node)] = node.value.data
            elif isinstance(node, Call):
                fn, arg_nodes = self._lower_call(node)
                arg_slots = tuple(slot_of[a.node_id] for a in arg_nodes)
                instrs.append((fn, arg_slots, new_slot(node)))
            elif isinstance(node, Composite):
                sub = compile_plan(node.body)
                arg_slots = tuple(slot_of[a.node_id] for a in node.inputs)
                instrs.append((sub.run_args, arg_slots, new_slot(node)))
            else:
                raise SimulationError(f"unhandled node {node!r}")
        self.instrs = instrs
        self.template = template
        self.output_slot = slot_of[graph.output.node_id]

    @staticmethod
    def _lower_call(node: Call) -> Tuple[Callable, list]:
        if node.op == "right_shift" and isinstance(node.inputs[1], Constant):
            # hot path (one requant per layer): resolve the scalar shift
            # once here instead of args[1].reshape(-1)[0] per inference
            shift = _scalar_int(node.inputs[1].value.data)
            rounding = node.attrs["rounding"]
            return (lambda x: K.right_shift(x, shift, rounding),
                    [node.inputs[0]])
        return _compile_call(node), list(node.inputs)

    # -- execution -----------------------------------------------------------

    def run(self, feeds: Dict[str, np.ndarray],
            batch: bool = False) -> np.ndarray:
        """Evaluate the plan on named input arrays.

        With ``batch=True`` each feed may carry a leading batch dim N in
        place of the graph's static 1 (all kernels are batch-covariant).
        """
        values = list(self.template)
        for name, slot, shape, np_dtype in self.input_slots:
            if name not in feeds:
                raise SimulationError(f"missing input {name!r}")
            arr = np.asarray(feeds[name], dtype=np_dtype)
            ok = arr.shape == shape or (
                batch and arr.ndim == len(shape) and arr.shape[1:] == shape[1:])
            if not ok:
                raise SimulationError(
                    f"input {name!r}: expected shape {shape}, got {arr.shape}")
            values[slot] = arr
        return self._execute(values)

    def run_args(self, *args) -> np.ndarray:
        """Positional execution (composite bodies, fused CPU kernels).

        Arguments map to the graph inputs in order; dtypes are coerced
        but shapes are not checked, so batched operands pass through.
        """
        values = list(self.template)
        for (name, slot, shape, np_dtype), arr in zip(self.input_slots, args):
            values[slot] = np.asarray(arr, dtype=np_dtype)
        return self._execute(values)

    def _execute(self, values: list) -> np.ndarray:
        for fn, arg_slots, out in self.instrs:
            values[out] = fn(*(values[s] for s in arg_slots))
        return values[self.output_slot]


def compile_plan(graph: Graph) -> CompiledPlan:
    """Lower ``graph`` to a :class:`CompiledPlan`, memoized per instance.

    Graphs are rebuilt (never mutated) by every transform, so caching on
    the object is safe: a rewritten graph is a new instance with a fresh
    plan.
    """
    plan = getattr(graph, "_compiled_plan", None)
    if plan is None:
        plan = CompiledPlan(graph)
        graph._compiled_plan = plan
    return plan


# -- public entry points ------------------------------------------------------------


def run_reference(graph: Graph, feeds: Dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate ``graph`` on named input arrays; returns the output array."""
    return compile_plan(graph).run(feeds)


def run_reference_batched(graph: Graph,
                          feeds: Dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate a batch of samples in one pass.

    Feeds carry a leading batch dim N in place of the graph's static 1;
    the result equals stacking N :func:`run_reference` calls sample by
    sample (bit-exact — the integer kernels are batch-covariant).
    """
    return compile_plan(graph).run(feeds, batch=True)


def random_inputs(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Seeded random feeds spanning each input dtype's logical range."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for var in graph.inputs:
        dt = var.dtype
        if dt.name == "float32":
            feeds[var.name] = rng.standard_normal(var.shape).astype(np.float32)
        else:
            feeds[var.name] = rng.integers(
                dt.min_value, dt.max_value + 1, size=var.shape
            ).astype(dt.to_numpy())
    return feeds


def random_inputs_batched(graph: Graph, batch: int,
                          seed: int = 0) -> Dict[str, np.ndarray]:
    """Batched random feeds; sample ``i`` equals ``random_inputs(seed+i)``.

    The per-sample layout makes batched runs directly comparable to a
    per-sample loop in tests and benchmarks.
    """
    samples = [random_inputs(graph, seed=seed + i) for i in range(batch)]
    return {
        var.name: np.concatenate([s[var.name] for s in samples], axis=0)
        for var in graph.inputs
    }
