"""Deployment validation utilities.

Wraps the "compile, execute on the simulator, compare to the golden
interpreter" loop used throughout the tests/benchmarks into one call,
with multiple random stimuli — the software analogue of the paper's
on-device validation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.program import CompiledModel
from .executor import ExecutionResult, Executor
from .reference import random_inputs, run_reference


@dataclass
class ValidationReport:
    """Outcome of validating one compiled deployment."""

    model_name: str
    runs: int = 0
    exact_runs: int = 0
    mismatched_seeds: List[int] = field(default_factory=list)
    max_abs_error: float = 0.0
    cycles: Optional[float] = None

    @property
    def passed(self) -> bool:
        return self.runs > 0 and self.exact_runs == self.runs

    def __str__(self):
        status = "PASS" if self.passed else "FAIL"
        return (f"[{status}] {self.model_name}: {self.exact_runs}/{self.runs}"
                f" bit-exact runs"
                + (f", max |err| {self.max_abs_error}" if not self.passed
                   else ""))


def validate_deployment(model: CompiledModel, soc, runs: int = 3,
                        seed: int = 0) -> ValidationReport:
    """Execute ``runs`` random stimuli and compare against the reference.

    Returns a report; does not raise on mismatch (callers decide).
    """
    report = ValidationReport(model_name=model.name)
    executor = Executor(soc)
    for i in range(runs):
        feeds = random_inputs(model.graph, seed=seed + i)
        result: ExecutionResult = executor.run(model, feeds)
        reference = run_reference(model.graph, feeds)
        report.runs += 1
        got = np.asarray(result.output, dtype=np.float64)
        want = np.asarray(reference, dtype=np.float64)
        if np.array_equal(got, want):
            report.exact_runs += 1
        else:
            report.mismatched_seeds.append(seed + i)
            report.max_abs_error = max(report.max_abs_error,
                                       float(np.abs(got - want).max()))
        report.cycles = result.total_cycles
    return report
