"""Runtime: reference interpreter, numeric kernels, SoC executor."""

from .cost import (
    accumulate_accel_cost, accumulate_depthfirst_cost, cost_layer,
    cost_layer_depthfirst,
)
from .executor import (
    EXEC_MODES, BatchExecutionResult, ExecutionResult, Executor,
    execute_chain_depth_first, execute_layer_fast, execute_layer_tiled,
)
from .reference import (
    CompiledPlan, compile_plan, random_inputs, random_inputs_batched,
    run_reference, run_reference_batched,
)
from .validate import ValidationReport, validate_deployment

__all__ = [
    "EXEC_MODES", "BatchExecutionResult", "ExecutionResult", "Executor",
    "accumulate_accel_cost", "accumulate_depthfirst_cost",
    "cost_layer", "cost_layer_depthfirst",
    "execute_chain_depth_first", "execute_layer_fast", "execute_layer_tiled",
    "CompiledPlan", "compile_plan",
    "random_inputs", "random_inputs_batched",
    "run_reference", "run_reference_batched",
    "ValidationReport", "validate_deployment",
]
