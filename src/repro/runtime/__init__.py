"""Runtime: reference interpreter, numeric kernels, SoC executor."""

from .cost import accumulate_accel_cost, cost_layer
from .executor import ExecutionResult, Executor
from .reference import random_inputs, run_reference
from .validate import ValidationReport, validate_deployment

__all__ = [
    "ExecutionResult", "Executor", "accumulate_accel_cost", "cost_layer",
    "random_inputs", "run_reference",
    "ValidationReport", "validate_deployment",
]
