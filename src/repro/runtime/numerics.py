"""Compatibility shim: the kernels live in :mod:`repro.numerics`.

They were moved to a top-level leaf module so the SoC accelerator
models can import them without dragging in the full runtime package.
"""

from ..numerics import *  # noqa: F401,F403
from ..numerics import (  # noqa: F401 — explicit re-exports for linters
    add, avg_pool2d, bias_add, bias_requantize, cast, clip, conv2d, dense,
    global_avg_pool2d, max_pool2d, pad_nchw, relu, requantize,
    right_shift, softmax,
)
