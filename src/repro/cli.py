"""Command-line interface.

Usage (also available as ``python -m repro.cli``)::

    python -m repro.cli models
    python -m repro.cli compile resnet --config digital --out-dir build/
    python -m repro.cli run dscnn --config mixed --timeline
    python -m repro.cli map resnet --config mixed --mapping dp
    python -m repro.cli map --pareto
    python -m repro.cli table1 --jobs 4
    python -m repro.cli table2
    python -m repro.cli fig4 --jobs 4
    python -m repro.cli fig5
    python -m repro.cli sweep l1_bytes 262144 65536 16384 --mapping dp

Model arguments accept either a zoo name (``resnet``, ``dscnn``,
``mobilenet``, ``toyadmos``) or a path to a JSON graph produced by
:func:`repro.ir.save_graph`.

Tiling solutions are memoized process-wide; ``--cache-file PATH``
persists them across invocations (a warm run skips every DORY search)
and ``--no-cache`` disables memoization. ``table1``/``fig4`` accept
``--jobs N`` to evaluate independent cells/points concurrently.

``run``/``table1``/``fig4`` accept ``--exec-mode
{tiled,fast,depthfirst,native}``: ``tiled`` simulates every DORY tile
(the verification mode), ``fast`` computes full layers at once —
byte-identical outputs, identical cycle counts, much lower wall-clock —
``depthfirst`` runs the model's fused patch-based chains
(byte-identical outputs; cycles price the halo recompute), and
``native`` executes the generated C itself, compiled with the system
toolchain and cached as a shared library next to the artifact (see
docs/NATIVE.md; falls back to ``fast`` per step without a compiler).
``run --batch N`` simulates a batch of inferences through the batched
runtime. ``pack --prebuild`` compiles the native library at pack time
so serving hosts just map it.

``compile``/``run``/``pack``/``serve`` accept ``--depthfirst
{auto,on,off}`` to plan fused depth-first conv chains (MCUNetV2-style
patch execution; see docs/DEPTHFIRST.md), and ``repro df [MODEL ...]``
prints the measured schedule report (adopted chains, arena/L2-peak
reduction, cycle overhead, bit-exactness) — ``--l2-kb`` shrinks L2 to
exercise the memory-constrained scenario.

``map`` prints the mapping decision table (per-layer candidates,
costs, rejection reasons) for one model, or sweeps the latency/energy
Pareto front across the zoo with ``--pareto`` (writes
``MAPPING_DSE.json``). ``compile``/``run``/``table1``/``sweep`` accept
``--mapping {rules,greedy,dp}`` to pick the target-selection strategy.

Serving (see docs/SERVING.md)::

    python -m repro.cli pack resnet --config digital --out resnet.dna
    python -m repro.cli load resnet.dna --check
    python -m repro.cli serve resnet.dna dscnn --requests 64 --clients 4

``pack`` compiles into a self-contained ``.dna`` artifact, ``load``
restores it without compiling (``--check`` proves bit-exactness + equal
cycles vs. a fresh compile), and ``serve`` hosts any mix of artifacts
and zoo models behind the dynamic-batching inference server — either an
interactive request loop or ``--requests N --clients K`` load
generation.

Observability (see docs/OBSERVABILITY.md)::

    python -m repro.cli trace resnet --exec-mode fast -o trace.json
    python -m repro.cli trace resnet8 --fleet -o trace.json
    python -m repro.cli stats --json
    python -m repro.cli serve resnet --requests 64 --metrics metrics.prom

``trace`` records one traced compile + inference as a span tree
(Perfetto / ``chrome://tracing``-loadable JSON) and prints the
model-fidelity table (measured host wall-time vs. the analytic cycle
model, per step); ``--fleet`` routes the requests through real worker
processes so the trace shows one request id crossing the worker-pipe
boundary. ``stats`` prints the merged ``repro-stats/1`` snapshot
federating batcher, server, fleet, tiling-cache, and native-build
counters; ``serve --metrics <file|port>`` exposes the same snapshot in
Prometheus text exposition format.

Static checks (see docs/CHECKS.md)::

    python -m repro.cli check resnet --config digital
    python -m repro.cli check resnet.dna
    python -m repro.cli check --grid --json

``check`` runs the static verifier framework (:mod:`repro.verify`)
over a fresh compile, a packed ``.dna`` artifact, or the whole zoo x
Table I grid — graph legality, L2 plan soundness, tile coverage / L1
budgets, and artifact integrity — and exits non-zero on any
error-severity diagnostic (``--json`` emits the ``repro-check/1``
report).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import eval as evaluation
from .core import (
    TilingCache, compile_model, get_default_cache,
    set_default_cache,
)
from .errors import OutOfMemoryError, ReproError
from .eval.harness import CONFIGS
from .frontend.modelzoo import MLPERF_TINY
from .ir import load_graph
from .runtime import (
    EXEC_MODES, Executor, random_inputs, random_inputs_batched,
    run_reference, run_reference_batched,
)
from .soc import get_platform, get_platform_spec, latency_ms, platform_names
from .soc.energy import energy_by_target_uj, execution_energy_uj


#: paper-style spellings accepted anywhere a zoo name is (the paper
#: calls the MLPerf Tiny networks ResNet8 / DS-CNN / MobileNetV1).
_MODEL_ALIASES = {"resnet8": "resnet", "ds-cnn": "dscnn",
                  "mobilenetv1": "mobilenet"}


def _load_model(name: str, precision: str):
    name = _MODEL_ALIASES.get(name.lower(), name)
    if name in MLPERF_TINY:
        return MLPERF_TINY[name](precision=precision)
    if os.path.exists(name):
        return load_graph(name)
    raise SystemExit(
        f"unknown model {name!r}: not a zoo name {sorted(MLPERF_TINY)} "
        f"and not a file")


def _setup(config: str, args=None):
    precision, soc_kwargs, cfg = CONFIGS[config]
    if args is not None and getattr(args, "mapping", None):
        cfg = cfg.with_overrides(mapping_strategy=args.mapping)
    if args is not None and getattr(args, "depthfirst", None):
        cfg = cfg.with_overrides(depthfirst=args.depthfirst)
    platform = (getattr(args, "platform", None)
                if args is not None else None)
    if platform and platform != "diana":
        # non-default platform: its registered spec decides the
        # accelerator set and the matching zoo precision, and the
        # platform identity flows into the config fingerprint
        spec = get_platform_spec(platform)
        return (spec.model_precision, get_platform(platform),
                cfg.with_overrides(platform=platform))
    return precision, get_platform("diana", **soc_kwargs), cfg


def _setup_cache(args):
    """Apply --no-cache / --cache-file to the process-wide cache."""
    if getattr(args, "no_cache", False):
        set_default_cache(None)
    elif getattr(args, "cache_file", None):
        set_default_cache(TilingCache(path=args.cache_file))


def _print_cache_stats():
    cache = get_default_cache()
    if cache is not None:
        s = cache.stats()
        print(f"tiling cache: {s['hits']} hits / {s['misses']} misses "
              f"({s['entries']} entries)")


def _parameter_count(graph) -> int:
    """Total scalar parameters (weights, biases, requant constants)."""
    from .ir import Composite, Constant

    total = 0
    for node in graph.topo_order():
        if isinstance(node, Constant):
            total += int(node.value.data.size)
        elif isinstance(node, Composite):
            total += _parameter_count(node.body)
    return total


def _rules_target_summary(graph) -> str:
    """Where the default weight-dtype rules put each layer, condensed."""
    from .mapping import assign_targets
    from .patterns import default_specs, partition

    partitioned = partition(graph, default_specs())
    _, decisions = assign_targets(partitioned, get_platform())
    counts: dict = {}
    for d in decisions:
        counts[d.target] = counts.get(d.target, 0) + 1
    return " ".join(f"{t}x{n}" for t, n in
                    sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def cmd_models(args) -> int:
    from .mapping import format_columns

    headers = ["model", "MMACs", "params", "weights kB",
               "default-rule targets (mixed)"]
    rows = []
    for name, fn in sorted(MLPERF_TINY.items()):
        graph = fn(precision="mixed")
        rows.append([
            name,
            f"{graph.total_macs() / 1e6:.2f}",
            f"{_parameter_count(graph):,}",
            f"{graph.weight_bytes() / 1024:.1f}",
            _rules_target_summary(graph),
        ])
    print("model zoo (MLPerf Tiny v1.0):")
    print(format_columns(headers, rows))
    print(f"configurations: {', '.join(CONFIGS)}")
    return 0


def cmd_platforms(args) -> int:
    """List every registered platform (built-ins + loaded plugins)."""
    from .mapping import format_columns

    rows = []
    for name in platform_names():
        spec = get_platform_spec(name)
        rows.append([
            name,
            ",".join(spec.accelerators) or "(cpu only)",
            spec.model_precision,
            f"{spec.params.l1_bytes // 1024}/{spec.params.l2_bytes // 1024}",
            spec.description,
        ])
    print(format_columns(
        ["platform", "accelerators", "zoo precision", "L1/L2 kB",
         "description"], rows))
    print("plugins: import a module calling repro.soc.register_platform, "
          "or set REPRO_PLATFORMS=module[,module...]")
    return 0


def cmd_compile(args) -> int:
    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(args.model, precision)
    try:
        model = compile_model(graph, soc, cfg)
    except OutOfMemoryError as exc:
        print(f"OUT OF MEMORY: {exc}")
        return 2
    print(model.summary())
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        for fname, source in model.c_sources.items():
            with open(os.path.join(args.out_dir, fname), "w") as f:
                f.write(source)
        with open(os.path.join(args.out_dir, "memory_plan.txt"), "w") as f:
            f.write(model.memory_plan.report())
        print(f"wrote {len(model.c_sources) + 1} files to {args.out_dir}")
    if args.dot:
        from .ir.dot import save_dot
        save_dot(model.graph, args.dot)
        print(f"wrote {args.dot}")
    return 0


def cmd_run(args) -> int:
    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(args.model, precision)
    try:
        model = compile_model(graph, soc, cfg)
    except OutOfMemoryError as exc:
        print(f"OUT OF MEMORY: {exc}")
        return 2

    import numpy as np
    executor = Executor(soc, exec_mode=args.exec_mode)
    if args.batch > 1:
        feeds = random_inputs_batched(graph, args.batch, seed=args.seed)
        result = executor.run_batch(model, feeds)
        exact = np.array_equal(
            np.asarray(result.outputs),
            np.asarray(run_reference_batched(model.graph, feeds)))
    else:
        feeds = random_inputs(graph, seed=args.seed)
        result = executor.run(model, feeds)
        exact = np.array_equal(np.asarray(result.output),
                               np.asarray(run_reference(model.graph, feeds)))
    print(model.summary())
    per_inference = result.perf.total_cycles
    print(f"latency : {latency_ms(per_inference):.3f} ms "
          f"(peak {latency_ms(result.perf.peak_cycles):.3f} ms)"
          + (f"; batch of {args.batch}: "
             f"{latency_ms(result.total_cycles):.3f} ms total"
             if args.batch > 1 else ""))
    energy = execution_energy_uj(result.perf, soc.params)
    split = ", ".join(f"{k}: {v:.1f} uJ" for k, v in
                      energy_by_target_uj(result.perf, soc.params).items())
    print(f"energy  : {energy:.1f} uJ ({split})")
    print(f"bit-exact vs reference: {exact}")
    if args.timeline:
        from .eval.timeline import render_timeline
        print()
        print(render_timeline(result.perf))
    if args.layers:
        from .eval.layer_report import format_layer_report, layer_report
        print()
        print(format_layer_report(layer_report(model, result, soc.params)))
    return 0 if exact else 1


def cmd_map(args) -> int:
    from .mapping import analyze_mapping, format_plan, make_objective, prepare_graph

    if args.pareto:
        from .eval.mapping_dse import (
            artifact_record, format_mapping_dse, pareto_sweep,
        )
        points = pareto_sweep(models=args.models, config=args.config)
        print(format_mapping_dse(points))
        if args.out:
            import json
            record = artifact_record(points, config=args.config)
            with open(args.out, "w") as f:
                json.dump(record, f, indent=2)
                f.write("\n")
            print(f"wrote {args.out}")
        _print_cache_stats()
        return 0

    if not args.model:
        print("error: map needs a MODEL (or --pareto)", file=sys.stderr)
        return 2
    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(args.model, precision)
    plan = analyze_mapping(
        prepare_graph(graph), soc, cfg,
        objective=make_objective(args.objective, args.weight))
    print(format_plan(plan))
    _print_cache_stats()
    return 0


def cmd_dse(args) -> int:
    from .eval.dse import (
        artifact_record, diff_records, format_dse, sweep_grid,
        validate_record,
    )

    points = sweep_grid(platforms=args.platforms, models=args.models,
                        budgets_kb=args.budgets_kb,
                        objectives=args.objectives,
                        strategy=args.mapping or "dp", jobs=args.jobs)
    print(format_dse(points))
    record = artifact_record(points, strategy=args.mapping or "dp",
                             jobs=args.jobs)

    if args.check:
        import json
        try:
            with open(args.out) as f:
                committed = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read committed grid {args.out}: {exc}",
                  file=sys.stderr)
            return 2
        problems = validate_record(committed) + diff_records(committed,
                                                             record)
        if problems:
            print(f"\n{args.out} drifted from a fresh sweep:",
                  file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        print(f"\n{args.out}: committed grid reproduces "
              f"({len(record['grid'])} cells re-priced)")
        _print_cache_stats()
        return 0

    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(record, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    _print_cache_stats()
    return 0


def cmd_df(args) -> int:
    from .eval.depthfirst import (
        format_depthfirst_reports, run_depthfirst_reports,
    )

    models = args.models or None
    for m in args.models:
        if m not in MLPERF_TINY:
            print(f"error: unknown model {m!r}; have {sorted(MLPERF_TINY)}",
                  file=sys.stderr)
            return 2
    reports = run_depthfirst_reports(
        models=models, config=args.config, mode=args.depthfirst,
        l1_budget=args.l1_kb * 1024 if args.l1_kb else None,
        l2_bytes=args.l2_kb * 1024 if args.l2_kb else None)
    print(format_depthfirst_reports(reports))
    _print_cache_stats()
    return 0 if all(r.bit_exact for r in reports) else 1


def cmd_sweep(args) -> int:
    from .eval.sweep import format_sweep, sweep_param

    points = sweep_param(args.param, args.values,
                         model=args.model, config=args.config,
                         jobs=args.jobs, mapping=args.mapping)
    print(format_sweep(points))
    _print_cache_stats()
    return 0


def _number(text: str):
    """argparse type for sweep values: int when possible, else float."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None


def cmd_check(args) -> int:
    import json

    from .verify import grid_report, verify_artifact, verify_grid, verify_model

    if args.grid:
        results = verify_grid(models=args.models,
                              artifacts=not args.no_artifacts)
    elif not args.target:
        print("error: check needs a TARGET (or --grid)", file=sys.stderr)
        return 2
    elif args.target.endswith(".dna"):
        results = [verify_artifact(args.target, deep=True)]
    else:
        precision, soc, cfg = _setup(args.config, args)
        graph = _load_model(args.target, precision)
        try:
            compiled = compile_model(graph, soc, cfg)
        except OutOfMemoryError as exc:
            print(f"OUT OF MEMORY: {exc}")
            return 2
        result = verify_model(compiled, soc=soc, config=cfg)
        result.target = f"{args.target}/{args.config}"
        results = [result]

    if args.json:
        print(json.dumps(grid_report(results), indent=2))
    else:
        for r in results:
            print(r.render())
        bad = sum(1 for r in results if not r.ok)
        print(f"{'FAIL' if bad else 'OK'}: {len(results) - bad}/"
              f"{len(results)} targets clean")
    return 0 if all(r.ok for r in results) else 1


def cmd_pack(args) -> int:
    from .serve import pack_model

    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(args.model, precision)
    out = args.out or f"{graph.name}-{args.config}.dna"
    try:
        art = pack_model(graph, soc, cfg, out,
                         validate_runs=args.validate_runs,
                         meta={"model": args.model, "config": args.config,
                               "precision": precision, "seed": 0})
    except OutOfMemoryError as exc:
        print(f"OUT OF MEMORY: {exc}")
        return 2
    print(art.model.summary())
    print(f"packed {out} ({os.path.getsize(out)} B gzip)")
    print(f"config fingerprint : {art.config_fingerprint[:16]}")
    print(f"content fingerprint: {art.fingerprint[:16]}")
    if art.validation:
        print(f"validated: {art.validation['exact_runs']}/"
              f"{art.validation['runs']} bit-exact runs at pack time")
    if args.prebuild:
        import time

        from .codegen.build import (build_native_library, find_c_compiler,
                                    library_path, native_cache_dir)

        compiler = find_c_compiler()
        if compiler is None:
            print("prebuild skipped: no C compiler on PATH "
                  "(serving will fall back to exec_mode='fast')")
        else:
            cache = native_cache_dir(out)
            t0 = time.perf_counter()
            lib = build_native_library(art.model, cache_dir=cache,
                                       fingerprint=art.fingerprint)
            dt_ms = (time.perf_counter() - t0) * 1e3
            if lib is None:
                print("prebuild FAILED (see warning above); "
                      "serving will fall back to exec_mode='fast'")
                return 1
            print(f"prebuilt {lib} ({os.path.getsize(lib)} B, "
                  f"{compiler}, {dt_ms:.0f} ms cold build)")
    return 0


def cmd_load(args) -> int:
    import time

    from .serve import load_artifact

    t0 = time.perf_counter()
    art = load_artifact(args.artifact,
                        expected_platform=getattr(args, "platform", None))
    t1 = time.perf_counter()
    print(art.model.summary())
    print(f"loaded in {(t1 - t0) * 1e3:.1f} ms — no compilation "
          f"(config fp {art.config_fingerprint[:16]}, "
          f"content fp {art.fingerprint[:16]})")
    if art.validation:
        print(f"pack-time validation: {art.validation['exact_runs']}/"
              f"{art.validation['runs']} bit-exact")
    if not args.check:
        return 0

    # --check: recompile from provenance and prove the artifact equal
    import numpy as np

    meta = art.meta or {}
    if meta.get("precision") is None or (
            meta.get("model") not in MLPERF_TINY
            and not (meta.get("model") and os.path.exists(meta["model"]))):
        print("check: artifact has no usable provenance; validating "
              "against the reference interpreter instead")
        from .runtime import validate_deployment
        report = validate_deployment(art.model, art.soc, runs=3)
        print(f"check: {report}")
        return 0 if report.passed else 1
    graph = _load_model(meta["model"], meta["precision"])
    fresh = compile_model(graph, art.soc, art.config)
    if fresh.fingerprint() != art.fingerprint:
        print("check: FAIL — fresh compile fingerprint differs "
              f"({fresh.fingerprint()[:16]} vs {art.fingerprint[:16]})")
        return 1
    feeds = random_inputs(graph, seed=1)
    a = Executor(art.soc, exec_mode="fast").run(art.model, feeds)
    b = Executor(art.soc, exec_mode="fast").run(fresh, feeds)
    bit_exact = np.array_equal(np.asarray(a.output), np.asarray(b.output))
    cycles_equal = a.total_cycles == b.total_cycles
    print(f"check: bit-exact vs fresh compile: {bit_exact}; "
          f"cycles equal: {cycles_equal} ({a.total_cycles:.0f})")
    return 0 if (bit_exact and cycles_equal) else 1


def _serve_register(server, spec: str, args):
    """Register one ``repro serve`` positional: artifact path or zoo name."""
    from .serve import load_artifact

    if os.path.exists(spec) or spec.endswith(".dna"):
        art = load_artifact(spec)
        return server.register_artifact(art), art.model
    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(spec, precision)
    compiled = compile_model(graph, soc, cfg)
    return server.register_model(compiled, soc), compiled


def _serve_load_loop(server, served, args) -> int:
    """--requests/--clients load generation across the hosted models."""
    import threading

    import numpy as np

    # precompute a small pool of (feeds, reference output) per model so
    # --verify stays O(pool), not O(requests)
    pool = {}
    for key, compiled in served.items():
        entries = []
        for s in range(min(8, args.requests)):
            feeds = random_inputs(compiled.graph, seed=args.seed + s)
            ref = (np.asarray(run_reference(compiled.graph, feeds))
                   if args.verify else None)
            entries.append((feeds, ref))
        pool[key] = entries
    keys = list(served)
    errors: list = []
    futures = [None] * args.requests

    def client(worker: int):
        for i in range(worker, args.requests, args.clients):
            key = keys[i % len(keys)]
            feeds, _ = pool[key][i % len(pool[key])]
            try:
                futures[i] = (key, i, server.submit(key, feeds))
            except Exception as exc:  # noqa: BLE001 — report, don't hang
                errors.append(f"submit {i} ({key}): {exc}")

    threads = [threading.Thread(target=client, args=(w,), daemon=True)
               for w in range(args.clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    for item in futures:
        if item is None:
            continue
        key, i, fut = item
        try:
            out = fut.result(timeout=60)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"request {i} ({key}): {exc}")
            continue
        _, ref = pool[key][i % len(pool[key])]
        if ref is not None and not np.array_equal(np.asarray(out), ref):
            errors.append(f"request {i} ({key}): output != reference")
    print(server.format_stats())
    if errors:
        for e in errors[:10]:
            print(f"error: {e}", file=sys.stderr)
        print(f"FAIL: {len(errors)}/{args.requests} requests failed",
              file=sys.stderr)
        return 1
    total = sum(s["requests"] for s in server.stats().values())
    batches = sum(s["batches"] for s in server.stats().values())
    print(f"OK: {total} requests in {batches} batches across "
          f"{len(keys)} model(s), {args.clients} client(s)")
    return 0


def _serve_interactive(server, served, args) -> int:
    """Local request loop: one 'MODEL [SEED]' request per stdin line."""
    import numpy as np

    print("serving; enter 'MODEL [SEED]' per line (empty line or EOF "
          "to stop):")
    for line in sys.stdin:
        line = line.strip()
        if not line or line in ("quit", "exit"):
            break
        parts = line.split()
        name, seed = parts[0], int(parts[1]) if len(parts) > 1 else 0
        match = next((k for k in served
                      if k == name or k.split("@", 1)[0] == name), None)
        if match is None:
            print(f"  error: unknown model {name!r}; have {sorted(served)}")
            continue
        try:
            feeds = random_inputs(served[match].graph, seed=seed)
            fut = server.submit(match, feeds)
            out = fut.result(timeout=60)
        except Exception as exc:  # noqa: BLE001 — a bad request is not fatal
            print(f"  error: {exc}")
            continue
        digest = int(np.int64(np.asarray(out).astype(np.int64).sum()))
        print(f"  {match}: seed={seed} output_sum={digest} "
              f"wall={fut.wall_s * 1e3:.2f} ms batch={fut.batch_size} "
              f"modeled={latency_ms(fut.cycles):.3f} ms")
    print(server.format_stats())
    return 0


def _fleet_register(fleet, spec: str, args, tmpdir: str):
    """Register one ``--fleet`` positional: artifact path or zoo name.

    The fleet hands workers an artifact *path*, so zoo names are
    compiled and packed to a temporary ``.dna`` first.
    """
    from .serve import load_artifact, pack_model

    if os.path.exists(spec) or spec.endswith(".dna"):
        art = load_artifact(spec)  # parent-side load only for feeds
        return fleet.add_deployment(spec, key=art.key), art.model
    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(spec, precision)
    path = os.path.join(tmpdir, f"{spec}.dna")
    compiled = pack_model(graph, soc, cfg, path)
    return fleet.add_deployment(path, key=spec), compiled


def _chaos_plan(seed: int):
    """The canned ``--chaos`` mix: every runtime fault kind at a low,
    seeded rate (see docs/RESILIENCE.md for the matrix)."""
    from .serve import FaultPlan, FaultRule

    return FaultPlan(seed=seed, rules=(
        FaultRule(kind="crash", rate=0.03),
        FaultRule(kind="oom_crash", rate=0.01),
        FaultRule(kind="hang", rate=0.02, param=0.4),
        FaultRule(kind="exec_error", rate=0.02),
        FaultRule(kind="queue_full", rate=0.02),
    ))


def _serve_fleet(args) -> int:
    """``repro serve --fleet``: multi-process supervised serving."""
    import tempfile

    from .eval.loadgen import format_load_report, run_load
    from .serve import FleetConfig, ServingFleet

    cfg = FleetConfig(
        workers=args.workers, exec_mode=args.exec_mode,
        default_deadline_s=(args.deadline_ms / 1e3
                            if args.deadline_ms else None),
        faults=_chaos_plan(args.chaos_seed) if args.chaos else None,
        fallback_exec_mode="tiled" if args.exec_mode != "tiled" else None,
    )
    rc = 0
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmpdir, \
            ServingFleet(cfg) as fleet:
        served = {}
        for spec in args.models:
            key, compiled = _fleet_register(fleet, spec, args, tmpdir)
            print(f"deployment {key}: {args.workers} worker(s), "
                  f"exec_mode={args.exec_mode}"
                  + (" [chaos]" if args.chaos else ""))
            served[key] = compiled
        for key in served:
            if not fleet.wait_ready(key, timeout=120):
                print(f"error: deployment {key} failed to become ready",
                      file=sys.stderr)
                return 1
        n = args.requests or 32
        per_client = max(n // max(args.clients, 1), 1)
        for key, compiled in served.items():
            feeds = random_inputs(compiled.graph, seed=args.seed)
            report = run_load(fleet, key, feeds, clients=args.clients,
                              requests_per_client=per_client,
                              deadline_s=cfg.default_deadline_s)
            print(f"\n{key}:")
            print(format_load_report(report))
            if report.lost or (not args.chaos and report.failed):
                rc = 1
        print()
        print(fleet.format_stats())
        if getattr(args, "metrics", None):
            _emit_metrics(args.metrics, lambda: {"fleet": fleet.stats()})
        if rc:
            print("FAIL: lost or failed requests (see above)",
                  file=sys.stderr)
    return rc


def cmd_serve(args) -> int:
    from .serve import InferenceServer

    if args.fleet:
        return _serve_fleet(args)
    server = InferenceServer(
        capacity=args.capacity, max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms, exec_mode=args.exec_mode)
    served = {}
    try:
        for spec in args.models:
            key, compiled = _serve_register(server, spec, args)
            print(f"registered {key} "
                  f"({compiled.name}, {len(compiled.steps)} kernels)")
            served[key] = compiled
        if args.requests:
            rc = _serve_load_loop(server, served, args)
        else:
            rc = _serve_interactive(server, served, args)
        if getattr(args, "metrics", None):
            _emit_metrics(args.metrics, lambda: {"server": server.stats()})
        return rc
    finally:
        server.shutdown(wait=True)


def cmd_trace(args) -> int:
    """``repro trace``: record one traced compile + inference."""
    from .obs import (
        disable_tracing, enable_tracing, fidelity_from_spans,
        format_fidelity, trace_span, write_chrome_trace,
    )

    precision, soc, cfg = _setup(args.config, args)
    graph = _load_model(args.model, precision)
    enable_tracing()
    try:
        if args.fleet:
            # pack + serve through real worker processes so the trace
            # shows request spans crossing the worker-pipe boundary
            import tempfile

            from .serve import FleetConfig, ServingFleet, pack_model
            with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
                path = os.path.join(tmp, f"{graph.name}.dna")
                model = pack_model(graph, soc, cfg, path).model
                fleet_cfg = FleetConfig(workers=args.workers,
                                        exec_mode=args.exec_mode)
                with ServingFleet(fleet_cfg) as fleet:
                    key = fleet.add_deployment(path, key=graph.name)
                    if not fleet.wait_ready(key, timeout=120):
                        print("error: fleet failed to become ready",
                              file=sys.stderr)
                        return 1
                    feeds = random_inputs(graph, seed=args.seed)
                    futs = [fleet.submit(key, feeds)
                            for _ in range(args.requests)]
                    for fut in futs:
                        fut.result(timeout=120)
        else:
            try:
                model = compile_model(graph, soc, cfg)
            except OutOfMemoryError as exc:
                print(f"OUT OF MEMORY: {exc}")
                return 2
            executor = Executor(soc, exec_mode=args.exec_mode)
            feeds = random_inputs(graph, seed=args.seed)
            for i in range(args.requests):
                with trace_span("exec.run", category="exec",
                                model=model.name, run=i,
                                exec_mode=args.exec_mode):
                    executor.run(model, feeds)
    finally:
        tracer = disable_tracing()
    spans = tracer.drain() if tracer is not None else []
    write_chrome_trace(args.out, spans, metadata={
        "model": model.name, "config": args.config,
        "exec_mode": args.exec_mode, "fleet": bool(args.fleet)})
    by_cat: dict = {}
    for s in spans:
        by_cat[s.category or "other"] = by_cat.get(s.category or "other",
                                                   0) + 1
    cats = ", ".join(f"{k}={v}" for k, v in sorted(by_cat.items()))
    print(f"wrote {args.out}: {len(spans)} spans ({cats})")
    # only steps executed in the requested mode: with --fleet the trace
    # also holds pack-time validation runs (tiled), which would skew
    # the table
    report = fidelity_from_spans(
        [s for s in spans
         if s.attrs.get("exec_mode", args.exec_mode) == args.exec_mode],
        params=soc.params, model=model.name, exec_mode=args.exec_mode)
    if report["rows"]:
        print()
        print(format_fidelity(report))
    return 0


def _format_stats_snapshot(snap) -> str:
    """Human rendering of a ``repro-stats/1`` snapshot."""
    from .mapping import format_columns

    lines = []
    if snap["counters"]:
        rows = [[k, str(int(v))]
                for k, v in sorted(snap["counters"].items())]
        lines += ["counters:", format_columns(["name", "value"], rows)]
    if snap["gauges"]:
        rows = [[k, f"{v:g}"] for k, v in sorted(snap["gauges"].items())]
        lines += ["gauges:", format_columns(["name", "value"], rows)]
    if snap["histograms"]:
        rows = [[k, str(h["count"]), f"{h.get('p50', 0):.3f}",
                 f"{h.get('p99', 0):.3f}", f"{h.get('max', 0):.3f}"]
                for k, h in sorted(snap["histograms"].items())]
        lines += ["histograms (ms):",
                  format_columns(["name", "n", "p50", "p99", "max"], rows)]
    for section, stats in sorted((snap.get("subsystems") or {}).items()):
        if isinstance(stats, dict):
            pairs = ", ".join(f"{k}={v}" for k, v in stats.items()
                              if not isinstance(v, (dict, list)))
            lines.append(f"{section}: {pairs}")
    if snap.get("events"):
        lines.append(f"events: {len(snap['events'])} recorded "
                     f"(latest: {snap['events'][-1]['name']})")
    return "\n".join(lines) if lines else "no metrics recorded"


def cmd_stats(args) -> int:
    """``repro stats``: the merged cross-subsystem snapshot."""
    import json

    from .obs import merged_snapshot, to_prometheus

    snap = merged_snapshot()
    if args.json:
        print(json.dumps(snap, indent=2, default=str))
    elif args.prom:
        print(to_prometheus(snap), end="")
    else:
        print(_format_stats_snapshot(snap))
    return 0


def _emit_metrics(dest: str, extra_fn=None) -> None:
    """``serve --metrics``: all digits = HTTP port to scrape, anything
    else = file to write one Prometheus text dump to."""
    from .obs import merged_snapshot, to_prometheus

    def _text() -> str:
        extra = extra_fn() if extra_fn is not None else None
        return to_prometheus(merged_snapshot(extra=extra))

    if dest.isdigit():
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = _text().encode()
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *a):
                pass

        httpd = HTTPServer(("127.0.0.1", int(dest)), _Handler)
        print(f"metrics: scrape http://127.0.0.1:{dest}/metrics "
              f"(ctrl-c to stop)")
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            httpd.server_close()
    else:
        with open(dest, "w") as fh:
            fh.write(_text())
        print(f"metrics: wrote {dest}")


def cmd_table1(args) -> int:
    results = evaluation.run_table1(jobs=args.jobs, exec_mode=args.exec_mode,
                                    mapping=args.mapping)
    print(evaluation.format_table1(results))
    claims = evaluation.summarize_claims(results)
    for key, value in claims.items():
        print(f"  {key}: {value:.2f}")
    _print_cache_stats()
    return 0


def cmd_table2(args) -> int:
    from .eval.sota import format_table2, run_table2
    print(format_table2(run_table2()))
    return 0


def cmd_fig4(args) -> int:
    if args.exec_mode is None:
        # --verify defaults to the schedule-exercising mode: a fast-mode
        # check compares the full-layer kernel against itself
        args.exec_mode = "tiled" if args.verify else "fast"
    points = evaluation.fig4.sweep(jobs=args.jobs, verify=args.verify,
                                   exec_mode=args.exec_mode)
    print(evaluation.fig4.format_fig4(points))
    print(f"max heuristic speed-up: "
          f"{evaluation.fig4.max_heuristic_speedup(points):.2f}x")
    if args.verify:
        checked = [p for p in points if p.verified is not None]
        bad = [p for p in checked if not p.verified]
        print(f"functional check ({args.exec_mode}): "
              f"{len(checked) - len(bad)}/{len(checked)} points bit-exact")
        if bad:
            return 1
    _print_cache_stats()
    return 0


def cmd_fig5(args) -> int:
    points = evaluation.fig5.characterize()
    print(evaluation.fig5.format_fig5(points))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_args(p):
        p.add_argument("--cache-file",
                       help="persist tiling solutions to this JSON file "
                            "(warm runs skip the DORY search)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable tiling-solution memoization")

    def add_exec_mode_arg(p, default="tiled"):
        p.add_argument("--exec-mode", choices=list(EXEC_MODES),
                       default=default,
                       help="accelerator simulation path: 'tiled' executes "
                            "every DORY tile (verification mode), 'fast' "
                            "computes full layers with identical outputs "
                            "and cycle counts, 'depthfirst' runs fused "
                            "patch-based conv chains, 'native' executes "
                            "the generated C via a cached shared library "
                            "(default: %(default)s)")

    def add_mapping_arg(p, default=None):
        from .mapping import STRATEGIES
        p.add_argument("--mapping", choices=list(STRATEGIES), default=default,
                       help="target-selection strategy: 'rules' (weight-"
                            "dtype policy), 'greedy' (cheapest candidate "
                            "per layer) or 'dp' (global cost-driven "
                            "search)")

    def add_depthfirst_arg(p, default=None):
        p.add_argument("--depthfirst", choices=["auto", "on", "off"],
                       default=default,
                       help="fused depth-first (patch-based) conv-chain "
                            "schedules: 'auto' engages only when the "
                            "activation arena exceeds the L2 budget, "
                            "'on' fuses every eligible chain "
                            "(see docs/DEPTHFIRST.md)")

    def add_platform_arg(p, default=None):
        p.add_argument("--platform", default=default,
                       help="registered platform to compile for "
                            "('repro platforms' lists them; plugins "
                            "register via REPRO_PLATFORMS or "
                            "repro.soc.register_platform). Off the "
                            "default 'diana', the platform's spec picks "
                            "the zoo precision and --config only "
                            "supplies the compiler knobs")

    sub.add_parser("models", help="list the model zoo").set_defaults(
        fn=cmd_models)
    sub.add_parser(
        "platforms",
        help="list registered platforms (built-ins + plugins)",
    ).set_defaults(fn=cmd_platforms)

    p = sub.add_parser("compile", help="compile a model for a platform")
    p.add_argument("model")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed")
    p.add_argument("--out-dir", help="write generated C sources here")
    p.add_argument("--dot", help="write a Graphviz rendering here")
    add_cache_args(p)
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "df", help="depth-first (patch-based) schedule report")
    p.add_argument("models", nargs="*",
                   help="zoo models (default: the whole zoo)")
    p.add_argument("--config", choices=list(CONFIGS), default="digital")
    p.add_argument("--depthfirst", choices=["auto", "on"], default="on",
                   help="planning mode to report (default: %(default)s)")
    p.add_argument("--l1-kb", type=int, default=None,
                   help="Eq. 2 tiling budget override in kB")
    p.add_argument("--l2-kb", type=int, default=None,
                   help="shrink the platform L2 to this many kB "
                        "(exercises the memory-constrained scenario)")
    add_cache_args(p)
    p.set_defaults(fn=cmd_df)

    p = sub.add_parser(
        "map", help="print the mapping decision table / Pareto sweep")
    p.add_argument("model", nargs="?",
                   help="zoo model or graph JSON (omit with --pareto)")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed")
    add_mapping_arg(p, default="dp")
    p.add_argument("--objective", choices=["latency", "energy", "weighted"],
                   default="latency",
                   help="what cost-driven strategies minimize")
    p.add_argument("--weight", type=float, default=0.5,
                   help="latency/energy trade-off of --objective weighted "
                        "(0 = latency, 1 = energy)")
    p.add_argument("--pareto", action="store_true",
                   help="sweep the weighted objective across the zoo and "
                        "write the MAPPING_DSE.json artifact")
    p.add_argument("--models", nargs="+", choices=sorted(MLPERF_TINY),
                   help="restrict --pareto to these models")
    p.add_argument("--out", default="MAPPING_DSE.json",
                   help="artifact path for --pareto (default: %(default)s)")
    add_cache_args(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    p.set_defaults(fn=cmd_map)

    p = sub.add_parser(
        "dse", help="platform x model x budget x objective DSE grid")
    p.add_argument("--platforms", nargs="+", metavar="NAME",
                   help="registered platforms to sweep (default: diana, "
                        "diana-noanalog, diana-nodig; see `repro "
                        "platforms`)")
    p.add_argument("--models", nargs="+", choices=sorted(MLPERF_TINY),
                   help="zoo models to sweep (default: all)")
    p.add_argument("--budgets-kb", nargs="+", type=int, metavar="KB",
                   help="L1 tiling budgets in kB (default: 64 256)")
    p.add_argument("--objectives", nargs="+",
                   choices=["latency", "energy"],
                   help="mapping objectives to sweep (default: both)")
    p.add_argument("--jobs", type=int, default=1,
                   help="price grid cells on this many threads")
    p.add_argument("--out", default="DSE_GRID.json",
                   help="grid artifact path (default: %(default)s)")
    p.add_argument("--check", action="store_true",
                   help="re-price the grid and fail if --out drifted "
                        "(the CI dse-smoke gate)")
    add_mapping_arg(p, default="dp")
    add_cache_args(p)
    p.set_defaults(fn=cmd_dse)

    p = sub.add_parser(
        "sweep", help="sweep one platform parameter (recompile + simulate)")
    p.add_argument("param", help="a DianaParams field, e.g. l1_bytes")
    p.add_argument("values", nargs="+", type=_number,
                   help="parameter values to sweep")
    p.add_argument("--model", default="resnet")
    p.add_argument("--config", choices=list(CONFIGS), default="digital")
    p.add_argument("--jobs", type=int, default=1)
    add_cache_args(p)
    add_mapping_arg(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("run", help="compile + simulate one inference")
    p.add_argument("model")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch", type=int, default=1,
                   help="simulate a batch of N inferences (N > 1 uses the "
                        "batched runtime; verified per sample)")
    p.add_argument("--timeline", action="store_true",
                   help="print the Fig. 2-style execution timeline")
    p.add_argument("--layers", action="store_true",
                   help="print the per-layer cycle/energy report")
    add_cache_args(p)
    add_exec_mode_arg(p)
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "check",
        help="statically verify a compile or a .dna artifact "
             "(see docs/CHECKS.md)")
    p.add_argument("target", nargs="?",
                   help="zoo model / graph JSON (compiled, then checked) "
                        "or a .dna artifact path (checked without "
                        "executing); omit with --grid")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed",
                   help="compile configuration for model targets")
    p.add_argument("--grid", action="store_true",
                   help="sweep every zoo model x Table I config, checking "
                        "both the fresh compile and a packed artifact")
    p.add_argument("--models", nargs="+", choices=sorted(MLPERF_TINY),
                   help="restrict --grid to these models")
    p.add_argument("--no-artifacts", action="store_true",
                   help="skip the pack + artifact-check half of --grid")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable repro-check/1 document")
    add_cache_args(p)
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "pack", help="compile a model into a .dna serving artifact")
    p.add_argument("model")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed")
    p.add_argument("--out", help="artifact path "
                                 "(default: <model>-<config>.dna)")
    p.add_argument("--validate-runs", type=int, default=1,
                   help="bit-exact validation runs recorded at pack "
                        "time (0 skips; default: %(default)s)")
    p.add_argument("--prebuild", action="store_true",
                   help="also compile the native shared library next "
                        "to the artifact (exec-mode native loads it "
                        "without a toolchain on the serving host)")
    add_cache_args(p)
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    p.set_defaults(fn=cmd_pack)

    p = sub.add_parser(
        "load", help="load a .dna artifact (no compilation) and inspect it")
    p.add_argument("artifact")
    p.add_argument("--check", action="store_true",
                   help="recompile from the artifact's provenance and "
                        "assert byte-identical outputs + equal cycles")
    p.add_argument("--platform", default=None,
                   help="reject the artifact unless it was packed for "
                        "this registered platform (V-ART-012)")
    add_cache_args(p)
    p.set_defaults(fn=cmd_load)

    p = sub.add_parser(
        "serve", help="host models/artifacts behind the batching server")
    p.add_argument("models", nargs="+",
                   help="any mix of .dna artifact paths and zoo names "
                        "(zoo names are compiled with --config first)")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed",
                   help="compile configuration for zoo-name specs")
    p.add_argument("--capacity", type=int, default=8,
                   help="LRU registry bound (default: %(default)s)")
    p.add_argument("--max-batch-size", type=int, default=8,
                   help="dynamic-batch upper bound (default: %(default)s)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="batch linger after the first queued request "
                        "(default: %(default)s)")
    p.add_argument("--requests", type=int, default=0,
                   help="load-generation mode: submit N requests and "
                        "exit (0 = interactive stdin loop)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads in load mode "
                        "(default: %(default)s)")
    p.add_argument("--verify", action="store_true",
                   help="byte-compare every load-mode response against "
                        "the reference interpreter")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fleet", action="store_true",
                   help="serve through the supervised multi-process "
                        "fleet instead of the in-process server")
    p.add_argument("--workers", type=int, default=2,
                   help="fleet worker processes per deployment "
                        "(default: %(default)s)")
    p.add_argument("--deadline-ms", type=float, default=30000.0,
                   help="fleet per-request deadline in ms, 0 = none "
                        "(default: %(default)s)")
    p.add_argument("--chaos", action="store_true",
                   help="fleet mode: inject the canned seeded fault mix "
                        "(crashes, hangs, OOM, queue-full)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for --chaos fault injection "
                        "(default: %(default)s)")
    p.add_argument("--metrics",
                   help="expose the merged metrics snapshot as "
                        "Prometheus text: all digits = HTTP port to "
                        "serve /metrics on, anything else = file to "
                        "write one dump to after serving")
    add_cache_args(p)
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    add_platform_arg(p)
    add_exec_mode_arg(p, default="fast")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "trace",
        help="record a traced compile + inference as Perfetto-loadable "
             "JSON (see docs/OBSERVABILITY.md)")
    p.add_argument("model")
    p.add_argument("--config", choices=list(CONFIGS), default="mixed")
    p.add_argument("-o", "--out", default="trace.json",
                   help="trace-event JSON output path "
                        "(default: %(default)s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=1,
                   help="inferences to trace (default: %(default)s)")
    p.add_argument("--fleet", action="store_true",
                   help="route the requests through the multi-process "
                        "fleet so the trace shows request spans crossing "
                        "the worker-pipe boundary")
    p.add_argument("--workers", type=int, default=1,
                   help="fleet workers with --fleet (default: %(default)s)")
    add_cache_args(p)
    add_exec_mode_arg(p, default="fast")
    add_mapping_arg(p)
    add_depthfirst_arg(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="merged observability snapshot: counters, gauges, "
             "histograms, and subsystem stats in one schema")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable repro-stats/1 JSON")
    p.add_argument("--prom", action="store_true",
                   help="emit Prometheus text exposition instead")
    p.set_defaults(fn=cmd_stats)

    for name, fn in (("table1", cmd_table1), ("table2", cmd_table2),
                     ("fig4", cmd_fig4), ("fig5", cmd_fig5)):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        if name in ("table1", "fig4"):
            p.add_argument("--jobs", type=int, default=1,
                           help="evaluate independent cells/points with "
                                "this many concurrent workers")
            add_cache_args(p)
        if name == "table1":
            add_exec_mode_arg(p)
            add_mapping_arg(p)
        if name == "fig4":
            add_exec_mode_arg(p, default=None)
            p.add_argument("--verify", action="store_true",
                           help="execute every swept tiling functionally "
                                "in --exec-mode (default: tiled, the "
                                "schedule-exercising mode) and byte-compare "
                                "against the golden kernels")
        p.set_defaults(fn=fn)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _setup_cache(args)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        cache = get_default_cache()
        if cache is not None and cache.path:
            cache.flush()


if __name__ == "__main__":
    raise SystemExit(main())
