"""Depth-first schedule report: what patch-based fusion buys per model.

Backs the ``repro df`` CLI command. For every requested model the
report compiles the configuration twice — layer-by-layer and with
``CompilerConfig.depthfirst`` engaged — then *executes* both
deployments and compares: adopted chains (span, patch grid, recompute
factor), the planned L2 activation arena, the measured execution L2
peak, modeled cycles, and the bit-exactness of the depth-first run
against the layer-by-layer one. Numbers are measured on the simulated
SoC, not estimated from the analysis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.compiler import compile_model
from ..core.program import CompiledModel, DepthFirstChain
from ..errors import OutOfMemoryError
from ..frontend.modelzoo import MLPERF_TINY
from ..runtime import Executor, random_inputs, run_reference
from ..soc import DEFAULT_PARAMS, DianaParams, get_platform
from .harness import CONFIGS


@dataclass
class DepthFirstReport:
    """Measured outcome of one (model, config) depth-first deployment."""

    model: str
    config: str
    mode: str
    chains: List[DepthFirstChain] = field(default_factory=list)
    arena_base: int = 0
    arena_df: int = 0
    l2_peak_base: int = 0
    l2_peak_df: int = 0
    cycles_base: float = 0.0
    cycles_df: float = 0.0
    bit_exact: Optional[bool] = None
    compiled: Optional[CompiledModel] = None

    @property
    def arena_reduction(self) -> float:
        return self.arena_base / self.arena_df if self.arena_df else 1.0

    @property
    def cycle_overhead(self) -> float:
        return self.cycles_df / self.cycles_base if self.cycles_base else 1.0


def depthfirst_report(model: str, config: str = "digital",
                      mode: str = "on",
                      params: Optional[DianaParams] = None,
                      l1_budget: Optional[int] = None,
                      seed: int = 0) -> DepthFirstReport:
    """Compile + execute one model with and without depth-first."""
    precision, soc_kwargs, cfg = CONFIGS[config]
    if l1_budget is not None:
        cfg = cfg.with_overrides(l1_budget=l1_budget)
    cfg = cfg.with_overrides(check_l2=False)
    graph = MLPERF_TINY[model](precision=precision, seed=seed)
    soc = get_platform("diana", params=params, **soc_kwargs)

    base = compile_model(graph, soc, cfg.with_overrides(depthfirst="off"))
    fused = compile_model(graph, soc, cfg.with_overrides(depthfirst=mode))
    feeds = random_inputs(graph, seed=seed + 1)
    run_df = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
    try:
        run_base = Executor(soc, exec_mode="fast").run(base, feeds)
        peak_base, cycles_base = run_base.l2_peak_bytes, run_base.total_cycles
        golden = run_base.output
    except OutOfMemoryError:
        # the layer-by-layer deployment cannot even execute on this L2
        # — the scenario depth-first rescues. Report its planned
        # residency and check exactness against the interpreter.
        peak_base = base.size.total + base.memory_plan.arena_bytes
        cycles_base = 0.0
        golden = np.asarray(run_reference(graph, feeds))
    return DepthFirstReport(
        model=model, config=config, mode=mode,
        chains=list(fused.depthfirst_chains),
        arena_base=base.memory_plan.arena_bytes,
        arena_df=fused.memory_plan.arena_bytes,
        l2_peak_base=peak_base,
        l2_peak_df=run_df.l2_peak_bytes,
        cycles_base=cycles_base,
        cycles_df=run_df.total_cycles,
        bit_exact=bool(np.array_equal(golden, run_df.output)),
        compiled=fused,
    )


def run_depthfirst_reports(models: Optional[List[str]] = None,
                           config: str = "digital", mode: str = "on",
                           l1_budget: Optional[int] = None,
                           l2_bytes: Optional[int] = None
                           ) -> List[DepthFirstReport]:
    """The ``repro df`` sweep over (a subset of) the model zoo.

    ``l2_bytes`` shrinks the platform L2 to exercise the
    memory-constrained scenario (``mode="auto"`` engages only under
    pressure).
    """
    params = (dataclasses.replace(DEFAULT_PARAMS, l2_bytes=l2_bytes)
              if l2_bytes else None)
    return [depthfirst_report(m, config=config, mode=mode, params=params,
                              l1_budget=l1_budget)
            for m in (models or sorted(MLPERF_TINY))]


def format_depthfirst_reports(reports: List[DepthFirstReport]) -> str:
    """Render the per-model table plus one line per adopted chain."""
    from ..mapping import format_columns

    headers = ["model", "chains", "arena kB", "df arena", "exec peak kB",
               "df peak", "cycles x", "exact"]
    rows = []
    for r in reports:
        rows.append([
            r.model, str(len(r.chains)),
            f"{r.arena_base / 1024:.1f}", f"{r.arena_df / 1024:.1f}",
            f"{r.l2_peak_base / 1024:.1f}", f"{r.l2_peak_df / 1024:.1f}",
            f"{r.cycle_overhead:.2f}", str(r.bit_exact),
        ])
    lines = [format_columns(headers, rows), ""]
    for r in reports:
        for c in r.chains:
            steps = r.compiled.steps[c.start:c.stop] if r.compiled else []
            span = (f"{steps[0].name}..{steps[-1].name}" if steps
                    else f"steps {c.start}..{c.stop - 1}")
            lines.append(
                f"  {r.model}: {span} grid={c.patch_grid[0]}x"
                f"{c.patch_grid[1]} recompute={c.recompute_factor:.2f}x "
                f"slabs={sum(c.per_layer_patch_bytes[:-1])} B "
                f"peak={c.peak_bytes} B")
    return "\n".join(lines)
