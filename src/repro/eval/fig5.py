"""Fig. 5 experiment: single-layer overhead characterization.

For every layer geometry, compare the accelerator-peak view (trigger to
completion, including the weight transfer — paper Sec. IV-B) with the
full HTVM kernel call (call to return on the RISC-V host). Reported as
throughput (MACs/cycle) and relative loss, per accelerator and layer
type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dory.heuristics import analog_heuristics, digital_heuristics
from ..dory.tiler import DoryTiler
from ..frontend.modelzoo import (
    fig5_analog_conv_channel, fig5_analog_conv_spatial,
    fig5_digital_conv_spatial, fig5_digital_dwconv, fig5_digital_fc_channel,
)
from ..runtime.cost import cost_layer
from ..soc import DianaParams, get_platform

#: the figure's series: (series name, target, layer list factory)
SERIES = {
    "digital_conv_spatial": ("soc.digital", fig5_digital_conv_spatial),
    "digital_fc_channel": ("soc.digital", fig5_digital_fc_channel),
    "digital_dwconv": ("soc.digital", fig5_digital_dwconv),
    "analog_conv_channel": ("soc.analog", fig5_analog_conv_channel),
    "analog_conv_spatial": ("soc.analog", fig5_analog_conv_spatial),
}


@dataclass
class Fig5Point:
    series: str
    layer: str
    macs: int
    peak_cycles: float
    full_cycles: float

    @property
    def peak_throughput(self) -> float:
        return self.macs / self.peak_cycles if self.peak_cycles else 0.0

    @property
    def full_throughput(self) -> float:
        return self.macs / self.full_cycles if self.full_cycles else 0.0

    @property
    def loss(self) -> float:
        """Throughput loss of the full call vs. the peak measurement."""
        if self.full_cycles <= 0:
            return 0.0
        return 1.0 - self.peak_cycles / self.full_cycles


def characterize(series: Optional[Sequence[str]] = None,
                 params: Optional[DianaParams] = None) -> List[Fig5Point]:
    """Run the Fig. 5 characterization for the requested series."""
    series = list(series) if series is not None else list(SERIES)
    soc = get_platform("diana", params=params)
    points: List[Fig5Point] = []
    for name in series:
        target, factory = SERIES[name]
        accel = soc.accelerator(target)
        heur = (digital_heuristics() if target == "soc.digital"
                else analog_heuristics())
        tiler = DoryTiler(target, soc.params, heur)
        for spec in factory():
            sol = tiler.solve(spec)
            rec = cost_layer(spec, sol, accel, soc.params)
            points.append(Fig5Point(
                series=name, layer=spec.name, macs=spec.macs(),
                peak_cycles=rec.peak_cycles, full_cycles=rec.total_cycles,
            ))
    return points


def loss_stats(points: List[Fig5Point]) -> Dict[str, Dict[str, float]]:
    """min/mean/max loss per series."""
    by_series: Dict[str, List[float]] = {}
    for p in points:
        by_series.setdefault(p.series, []).append(p.loss)
    return {
        name: {
            "min": min(vals), "max": max(vals),
            "mean": sum(vals) / len(vals),
        }
        for name, vals in by_series.items()
    }


def format_fig5(points: List[Fig5Point]) -> str:
    from .tables import format_table
    headers = ["series", "layer", "MMACs", "peak MAC/cy", "HTVM MAC/cy",
               "loss %"]
    rows = [[
        p.series, p.layer, f"{p.macs / 1e6:.3f}",
        f"{p.peak_throughput:.2f}", f"{p.full_throughput:.2f}",
        f"{100 * p.loss:.1f}",
    ] for p in points]
    return format_table(headers, rows,
                        title="Fig. 5 — single-layer overhead (peak vs. HTVM)")
