"""Deployment harness: the four Table I configurations, end to end.

Each configuration pairs a model *precision variant* with a platform
setup, exactly mirroring the paper's columns:

* ``cpu-tvm``  — int8 model, no accelerators, plain-TVM flow
  (no offload, no buffer reuse, TVM runtime),
* ``digital``  — int8 model, digital accelerator only, HTVM flow,
* ``analog``   — ternary model, analog accelerator only, HTVM flow,
* ``mixed``    — mixed-precision model, both accelerators, HTVM flow.

Every run is verified bit-exact against the reference interpreter.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.compiler import compile_model
from ..core.config import HTVM, TVM_CPU
from ..core.program import CompiledModel
from ..errors import OutOfMemoryError
from ..frontend.modelzoo import MLPERF_TINY
from ..runtime import ExecutionResult, Executor, random_inputs, run_reference
from ..soc import DianaParams, get_platform, latency_ms
from .tables import format_table, fmt_ms
from . import paper

#: configuration label -> (model precision, soc kwargs, compiler config)
CONFIGS: Dict[str, tuple] = {
    "cpu-tvm": ("int8", dict(enable_digital=False, enable_analog=False),
                TVM_CPU),
    "digital": ("int8", dict(enable_analog=False), HTVM),
    "analog": ("ternary", dict(enable_digital=False), HTVM),
    "mixed": ("mixed", dict(), HTVM),
}


@dataclass
class DeploymentResult:
    """Outcome of one (model, configuration) deployment."""

    model: str
    config: str
    mapping: str = "rules"
    oom: bool = False
    latency_ms: Optional[float] = None
    peak_ms: Optional[float] = None
    size_kb: Optional[float] = None
    verified: Optional[bool] = None
    compiled: Optional[CompiledModel] = None
    execution: Optional[ExecutionResult] = None


def _finish_deployment(result: DeploymentResult, compiled, soc,
                       seed: int, exec_mode: str,
                       validate: bool) -> DeploymentResult:
    """Shared execute-and-report tail of the deploy entry points."""
    feeds = random_inputs(compiled.graph, seed=seed + 1)
    execution = Executor(soc, exec_mode=exec_mode).run(compiled, feeds)
    if validate:
        reference = run_reference(compiled.graph, feeds)
        result.verified = bool(np.array_equal(
            np.asarray(reference), np.asarray(execution.output)))

    result.latency_ms = latency_ms(execution.total_cycles, soc.params)
    result.peak_ms = latency_ms(execution.peak_cycles, soc.params)
    result.size_kb = compiled.binary_size_bytes / 1024
    result.compiled = compiled
    result.execution = execution
    return result


def deploy(model: str, config: str,
           params: Optional[DianaParams] = None,
           verify: bool = True,
           seed: int = 0,
           exec_mode: str = "tiled",
           mapping: Optional[str] = None,
           depthfirst: Optional[str] = None,
           validate: Optional[bool] = None) -> DeploymentResult:
    """Compile + simulate one MLPerf Tiny model in one configuration.

    ``exec_mode`` selects the simulator's functional path for
    accelerator layers: ``"tiled"`` (default) executes every DORY tile
    and is the verification mode; ``"fast"`` computes full layers in
    one kernel call with byte-identical outputs and identical cycle
    counts; ``"depthfirst"`` additionally runs the model's fused
    patch-based chains (see :class:`~repro.runtime.Executor`).

    ``mapping`` overrides the configuration's
    ``CompilerConfig.mapping_strategy`` (``"rules"``, ``"greedy"`` or
    ``"dp"``); ``None`` keeps the config's own strategy. ``depthfirst``
    likewise overrides ``CompilerConfig.depthfirst``
    (``"auto"``/``"on"``/``"off"``).

    ``validate`` controls the golden-reference re-check after
    execution. ``None`` (default) follows ``verify`` — the historical
    behavior, where every deploy re-interprets the whole graph. A
    caller that already validated this deployment (e.g. the serving
    path, which checks artifacts once at pack time) passes
    ``validate=False`` to skip the reference interpreter on the hot
    path; ``result.verified`` is then left as ``None`` rather than
    recomputed.
    """
    if model not in MLPERF_TINY:
        raise KeyError(f"unknown model {model!r}; have {sorted(MLPERF_TINY)}")
    if validate is None:
        validate = verify
    precision, soc_kwargs, cfg = CONFIGS[config]
    if mapping is not None:
        cfg = cfg.with_overrides(mapping_strategy=mapping)
    if depthfirst is not None:
        cfg = cfg.with_overrides(depthfirst=depthfirst)
    graph = MLPERF_TINY[model](precision=precision, seed=seed)
    soc = get_platform("diana", params=params, **soc_kwargs)

    result = DeploymentResult(model=model, config=config,
                              mapping=cfg.mapping_strategy)
    try:
        compiled = compile_model(graph, soc, cfg)
    except OutOfMemoryError:
        result.oom = True
        # size is still reportable: compile without the L2 check
        compiled = compile_model(graph, soc, cfg.with_overrides(check_l2=False))
        result.size_kb = compiled.binary_size_bytes / 1024
        result.compiled = compiled
        return result

    return _finish_deployment(result, compiled, soc, seed, exec_mode,
                              validate)


def deploy_artifact(artifact,
                    seed: int = 0,
                    exec_mode: str = "fast",
                    validate: Optional[bool] = None) -> DeploymentResult:
    """Simulate a packed ``.dna`` artifact — no compilation at all.

    ``artifact`` is a path or a
    :class:`~repro.serve.artifact.LoadedArtifact`. By default the
    pack-time validation record is trusted: ``result.verified`` is
    carried over from the artifact and the reference interpreter is
    *not* re-run (the serving hot path). Pass ``validate=True`` to
    force a fresh bit-exact check anyway.
    """
    from ..serve.artifact import LoadedArtifact, load_artifact
    if not isinstance(artifact, LoadedArtifact):
        artifact = load_artifact(artifact)
    if validate is None:
        validate = False
    result = DeploymentResult(
        model=artifact.model.name, config=artifact.config.name,
        mapping=artifact.config.mapping_strategy)
    result = _finish_deployment(result, artifact.model, artifact.soc,
                                seed, exec_mode, validate)
    if not validate and artifact.validation is not None:
        result.verified = bool(artifact.validation.get("passed"))
    return result


def run_table1(models: Optional[List[str]] = None,
               configs: Optional[List[str]] = None,
               params: Optional[DianaParams] = None,
               verify: bool = True,
               jobs: Optional[int] = None,
               exec_mode: str = "tiled",
               mapping: Optional[str] = None) -> List[DeploymentResult]:
    """All Table I cells (or a subset).

    ``exec_mode`` is forwarded to every :func:`deploy` (``"fast"``
    accelerates large sweeps; results are bit- and cycle-identical).
    ``mapping`` overrides the mapping strategy of every cell (e.g.
    ``"dp"`` regenerates the table under the cost-driven mapper).
    ``jobs > 1`` deploys cells concurrently (thread fan-out; the
    compiler, simulator and the shared tiling cache are thread-safe and
    every cell is independent). Results keep the serial
    model-major/config-minor order and are value-identical to a serial
    run — each deployment is deterministic in (model, config, params).
    """
    models = models or sorted(MLPERF_TINY)
    configs = configs or list(CONFIGS)
    cells = [(m, c) for m in models for c in configs]
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [deploy(m, c, params=params, verify=verify,
                       exec_mode=exec_mode, mapping=mapping)
                for m, c in cells]
    with ThreadPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        return list(pool.map(
            lambda cell: deploy(cell[0], cell[1], params=params,
                                verify=verify, exec_mode=exec_mode,
                                mapping=mapping),
            cells))


def format_table1(results: List[DeploymentResult]) -> str:
    """Paper-style Table I with paper-reported values alongside.

    A ``mapping`` column appears only when some result used a
    non-default strategy, so the baseline rendering is unchanged.
    """
    with_mapping = any(r.mapping != "rules" for r in results)
    headers = ["model", "config"]
    if with_mapping:
        headers.append("mapping")
    headers += ["peak ms", "HTVM ms", "size kB",
                "paper peak", "paper HTVM", "paper kB", "exact"]
    rows = []
    for r in results:
        ref = paper.TABLE1.get(r.model, {}).get(r.config, (None, None, None))
        rows.append([
            r.model, r.config,
            *([r.mapping] if with_mapping else []),
            "OoM" if r.oom else fmt_ms(r.peak_ms),
            "OoM" if r.oom else fmt_ms(r.latency_ms),
            None if r.size_kb is None else f"{r.size_kb:.0f}",
            "OoM" if (ref[1] is None and ref[0] is None) else fmt_ms(ref[0]),
            "OoM" if ref[1] is None else fmt_ms(ref[1]),
            ref[2],
            r.verified,
        ])
    return format_table(
        headers, rows,
        title="Table I — MLPerf Tiny on DIANA (measured vs. paper)")


def summarize_claims(results: List[DeploymentResult]) -> Dict[str, float]:
    """Recompute the paper's headline end-to-end claims."""
    by_key = {(r.model, r.config): r for r in results}

    def lat(model, config):
        r = by_key.get((model, config))
        return r.latency_ms if r and r.latency_ms else None

    claims: Dict[str, float] = {}
    if lat("resnet", "cpu-tvm") and lat("resnet", "digital"):
        claims["resnet_digital_speedup_over_tvm"] = (
            lat("resnet", "cpu-tvm") / lat("resnet", "digital"))
    if lat("resnet", "cpu-tvm") and lat("resnet", "mixed"):
        claims["resnet_mixed_speedup_over_tvm"] = (
            lat("resnet", "cpu-tvm") / lat("resnet", "mixed"))
    if lat("dscnn", "analog") and lat("dscnn", "mixed"):
        claims["dscnn_mixed_speedup_over_analog"] = (
            lat("dscnn", "analog") / lat("dscnn", "mixed"))
    cpu = by_key.get(("resnet", "cpu-tvm"))
    dig = by_key.get(("resnet", "digital"))
    if cpu and dig and cpu.size_kb and dig.size_kb:
        claims["resnet_binary_reduction"] = 1 - dig.size_kb / cpu.size_kb
    return claims
