"""Published numbers from the paper, for paper-vs-measured reporting.

All values transcribed from the DAC 2023 paper (arXiv:2406.07453):
Table I (latency ms / binary kB on DIANA), Table II (SotA comparison at
a normalized 260 MHz clock), and the headline claims of Figs. 4-5.
``None`` marks the MobileNet out-of-memory entry.
"""

from __future__ import annotations

#: Table I — per model, per configuration: (peak_ms, htvm_ms, size_kb).
#: The CPU/TVM column has no peak measurement: (None, lat, size).
TABLE1 = {
    "dscnn": {
        "cpu-tvm": (None, 48.24, 59),
        "digital": (1.70, 1.75, 60),
        "analog": (13.51, 13.51, 93),
        "mixed": (1.66, 1.69, 81),
    },
    "mobilenet": {
        "cpu-tvm": (None, None, 289),     # OoM
        "digital": (5.42, 5.68, 306),
        "analog": (40.67, 40.67, 239),
        "mixed": (5.39, 5.82, 293),
    },
    "resnet": {
        "cpu-tvm": (None, 134.11, 122),
        "digital": (0.66, 1.19, 107),
        "analog": (1.52, 1.53, 129),
        "mixed": (0.61, 1.12, 108),
    },
    "toyadmos": {
        "cpu-tvm": (None, 4.70, 287),
        "digital": (0.30, 0.36, 315),
        "analog": (0.80, 0.80, 171),
        "mixed": (0.49, 0.52, 275),
    },
}

#: Table II — latency (ms) at 260 MHz on other platforms/toolchains.
TABLE2 = {
    "dscnn": {"stm32-tvm": 66.6, "stm32-cmsis": 46.1, "gap9-gapflow": 0.68,
              "htvm-diana-digital": 1.75},
    "mobilenet": {"stm32-tvm": 155.0, "stm32-cmsis": 139.0,
                  "gap9-gapflow": 1.61, "htvm-diana-digital": 5.68},
    "resnet": {"stm32-tvm": 180.0, "stm32-cmsis": 180.0,
               "gap9-gapflow": 0.88, "htvm-diana-digital": 1.19},
    "toyadmos": {"stm32-tvm": 5.4, "stm32-cmsis": 3.97,
                 "gap9-gapflow": 0.256, "htvm-diana-digital": 0.36},
}

#: Fig. 4: maximum speed-up of heuristic tiling over the baseline tiler.
FIG4_MAX_SPEEDUP = 6.2

#: Fig. 5 headline overhead numbers (throughput loss of the full HTVM
#: kernel call vs. the accelerator-peak measurement).
FIG5 = {
    "analog_conv_mean_loss": 0.052,   # "about 5.20% on average"
    "analog_conv_min_loss": 0.0051,   # "a minimum of 0.51%"
    "digital_conv_best_loss": 0.0132,  # "loses at best only 1.32%"
    "digital_fc_worst_loss": 0.545,   # "about 54.5%"
    "digital_dw_max_loss": 0.207,     # "never more than 20.7% slower"
    "digital_dw_peak_macs": 3.75,     # MACs/cycle
}

#: Headline end-to-end claims (Sec. IV-C).
CLAIMS = {
    "resnet_digital_speedup_over_tvm": 112.0,
    "resnet_mixed_speedup_over_tvm": 120.0,
    "dscnn_mixed_speedup_over_analog": 8.0,
    "resnet_binary_reduction": 0.123,
    "digital_conv_peak_gap": 0.1552,   # avg distance from theoretical peak
    "analog_conv_peak_gap": 0.0519,
}
