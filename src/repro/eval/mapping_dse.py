"""Mapping design-space exploration: the latency/energy Pareto sweep.

The cost-driven engine (:mod:`repro.mapping.engine`) optimizes a
scalarized objective; sweeping its latency/energy ``weight`` from 0 to
1 traces the achievable trade-off front per model. This module runs
that sweep across the MLPerf Tiny zoo, deduplicates the distinct
mappings it discovers, marks the Pareto-optimal ones, and writes the
``MAPPING_DSE.json`` artifact (regenerate with ``repro map --pareto``).

All numbers are *modeled* totals from the mapping engine's own cost
evaluation (per-layer kernel cycles/energy plus inter-core transfer
penalties) — no functional simulation runs, so the whole zoo sweeps in
seconds through the tiling cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import get_default_cache
from ..frontend.modelzoo import MLPERF_TINY
from ..mapping import analyze_mapping, make_objective, prepare_graph
from ..soc import get_platform, latency_ms
from .harness import CONFIGS
from .tables import format_table

#: default latency/energy weights of the sweep (0 = latency, 1 = energy).
DEFAULT_WEIGHTS: Tuple[float, ...] = tuple(w / 10.0 for w in range(11))


@dataclass
class ParetoPoint:
    """One distinct mapping discovered by the weight sweep."""

    model: str
    config: str
    weights: List[float]          #: sweep weights that produced it
    assignment: Tuple[str, ...]
    target_counts: Dict[str, int]
    cycles: float                 #: modeled latency incl. transfers
    energy_pj: float
    latency_ms: float
    energy_uj: float
    pareto: bool = False          #: on the (cycles, energy) front
    is_rules: bool = False        #: identical to the rules assignment


def sweep_model(model: str, config: str = "mixed",
                weights: Sequence[float] = DEFAULT_WEIGHTS,
                cache=None) -> List[ParetoPoint]:
    """All distinct ``"dp"`` mappings of one model across the weights.

    The rules baseline is always included (marked ``is_rules``), so
    the front can be read against the seed policy.
    """
    if model not in MLPERF_TINY:
        raise KeyError(f"unknown model {model!r}; have {sorted(MLPERF_TINY)}")
    precision, soc_kwargs, cfg = CONFIGS[config]
    soc = get_platform("diana", **soc_kwargs)
    pgraph = prepare_graph(MLPERF_TINY[model](precision=precision))
    if cache is None:
        cache = get_default_cache()

    by_sig: Dict[Tuple[str, ...], ParetoPoint] = {}

    def record(sig, cycles, pj, counts, weight: Optional[float],
               is_rules: bool = False):
        point = by_sig.get(sig)
        if point is None:
            point = ParetoPoint(
                model=model, config=config, weights=[], assignment=sig,
                target_counts=counts, cycles=cycles, energy_pj=pj,
                latency_ms=latency_ms(cycles, soc.params),
                energy_uj=pj / 1e6, is_rules=is_rules)
            by_sig[sig] = point
        if weight is not None:
            point.weights.append(weight)
        point.is_rules = point.is_rules or is_rules

    for w in weights:
        plan = analyze_mapping(
            pgraph, soc, cfg, cache=cache, strategy="dp",
            objective=make_objective("weighted", w))
        record(plan.signature, plan.total_cycles, plan.total_energy_pj,
               plan.target_counts, w)
        if w == weights[0]:
            base_sig = tuple(plan.baseline_assignment)
            counts: Dict[str, int] = {}
            for t in base_sig:
                counts[t] = counts.get(t, 0) + 1
            record(base_sig, plan.baseline_cycles, plan.baseline_energy_pj,
                   counts, None, is_rules=True)

    points = sorted(by_sig.values(), key=lambda p: (p.cycles, p.energy_pj))
    for p in points:
        p.pareto = not any(
            (q.cycles <= p.cycles and q.energy_pj <= p.energy_pj
             and (q.cycles < p.cycles or q.energy_pj < p.energy_pj))
            for q in points)
    return points


def pareto_sweep(models: Optional[Sequence[str]] = None,
                 config: str = "mixed",
                 weights: Sequence[float] = DEFAULT_WEIGHTS,
                 cache=None) -> Dict[str, List[ParetoPoint]]:
    """The full MLPerf-Tiny-zoo sweep: model -> distinct mappings."""
    models = list(models) if models else sorted(MLPERF_TINY)
    return {m: sweep_model(m, config=config, weights=list(weights),
                           cache=cache)
            for m in models}


def artifact_record(points_by_model: Dict[str, List[ParetoPoint]],
                    config: str = "mixed",
                    weights: Sequence[float] = DEFAULT_WEIGHTS) -> dict:
    """The JSON-serializable ``MAPPING_DSE.json`` payload."""
    models = {}
    for model, points in points_by_model.items():
        models[model] = [{
            "weights": p.weights,
            "targets": p.target_counts,
            "cycles": p.cycles,
            "energy_pj": p.energy_pj,
            "latency_ms": round(p.latency_ms, 6),
            "energy_uj": round(p.energy_uj, 6),
            "pareto": p.pareto,
            "rules": p.is_rules,
        } for p in points]
    return {"config": config, "weights": list(weights),
            "objective": "weighted(latency, energy)", "models": models}


def format_mapping_dse(points_by_model: Dict[str, List[ParetoPoint]]) -> str:
    """A per-model table of the distinct mappings and their front."""
    headers = ["model", "mapping (targets)", "latency ms", "energy uJ",
               "weights", "front"]
    rows = []
    for model in sorted(points_by_model):
        for p in points_by_model[model]:
            counts = ", ".join(f"{t.split('.')[-1]}:{n}" for t, n in
                               sorted(p.target_counts.items()))
            tag = ("rules+pareto" if p.is_rules and p.pareto
                   else "rules" if p.is_rules
                   else "pareto" if p.pareto else "")
            rows.append([
                model, counts, f"{p.latency_ms:.3f}", f"{p.energy_uj:.1f}",
                ",".join(f"{w:g}" for w in p.weights) or "-", tag,
            ])
    return format_table(
        headers, rows,
        title="Mapping DSE — distinct cost-driven mappings per model")
