"""Fig. 4 experiment: hardware-aware tiling vs. L1 memory budget.

For each of the paper's layers L0..L3, sweep the Eq. 2 budget downward
and tile with the three strategies of the figure:

* ``baseline``  — only tile size (round markers),
* ``pe-only``   — + PE-utilization heuristics, Eqs. 3-4 (squares),
* ``full``      — + DMA heuristic, Eq. 5 (diamonds).

Latency is the full HTVM kernel-call cost on the digital accelerator.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.cache import get_default_cache
from ..dory.heuristics import (
    digital_heuristics, digital_pe_only_heuristics, no_heuristics,
)
from ..dory.layer_spec import LayerSpec
from ..dory.tiler import DoryTiler
from ..errors import TilingError
from ..frontend.modelzoo import fig4_layers
from .. import numerics as K
from ..runtime.cost import cost_layer
from ..runtime.executor import execute_layer_fast, execute_layer_tiled
from ..soc import DianaParams, get_platform
from .tables import format_table

STRATEGIES = {
    "baseline": no_heuristics,
    "pe-only": digital_pe_only_heuristics,
    "full": digital_heuristics,
}

#: default Eq. 2 budget sweep (bytes), 256 kB down to 8 kB.
DEFAULT_BUDGETS = [
    256 * 1024, 192 * 1024, 128 * 1024, 96 * 1024, 64 * 1024,
    48 * 1024, 32 * 1024, 24 * 1024, 16 * 1024, 12 * 1024, 8 * 1024,
]


@dataclass
class Fig4Point:
    layer: str
    strategy: str
    budget_bytes: int
    cycles: Optional[float]      #: None when no feasible tiling exists
    needs_tiling: Optional[bool] = None
    tile: Optional[str] = None
    verified: Optional[bool] = None  #: functional check result (if run)


def _verify_point(accel, spec: LayerSpec, sol, exec_mode: str) -> bool:
    """Execute one swept tiling functionally and byte-compare it.

    The layer gets seeded random weights/bias/input; the chosen
    ``exec_mode`` executes it through the runtime helpers and the result
    is compared against a golden full-layer computation written directly
    with the shared kernels. ``"tiled"`` therefore validates the whole
    DORY schedule (halos, edge padding, partial sums) of every swept
    point; ``"fast"`` is a cheap plumbing check.
    """
    rng = np.random.default_rng(0)
    cg = spec.in_channels // spec.groups
    w = rng.integers(-128, 128, (spec.out_channels, cg, spec.fy, spec.fx),
                     dtype=np.int64).astype(np.int8)
    bias = rng.integers(-(1 << 12), 1 << 12, spec.out_channels,
                        dtype=np.int64).astype(np.int32)
    vspec = replace(spec, weight=w, bias=bias)
    x = rng.integers(-128, 128, (1, spec.in_channels, spec.iy, spec.ix),
                     dtype=np.int64).astype(np.int8)
    if exec_mode == "tiled":
        got = execute_layer_tiled(accel, vspec, sol, x)
    else:
        got = execute_layer_fast(accel, vspec, x)
    acc = K.conv2d(x, w, vspec.strides, vspec.padding, vspec.groups)
    lo, hi = (-64, 63) if vspec.out_dtype == "int7" else (-128, 127)
    want = K.bias_requantize(acc, bias, vspec.shift, vspec.relu, lo, hi)
    return bool(np.array_equal(got, want))


def sweep(layers: Optional[Sequence[LayerSpec]] = None,
          budgets: Optional[Sequence[int]] = None,
          strategies: Optional[Sequence[str]] = None,
          params: Optional[DianaParams] = None,
          jobs: Optional[int] = None,
          verify: bool = False,
          exec_mode: str = "fast") -> List[Fig4Point]:
    """Run the Fig. 4 sweep; returns one point per (layer, strategy, budget).

    Tiling solutions (and infeasibility) route through the process-wide
    :class:`~repro.core.cache.TilingCache`, so repeated sweeps are
    warm. ``jobs > 1`` evaluates the independent points concurrently;
    the returned list keeps the serial layer/strategy/budget order.

    ``verify=True`` additionally executes every feasible point
    functionally in ``exec_mode`` and byte-compares it against the
    golden kernels (see :func:`_verify_point`); the outcome lands in
    :attr:`Fig4Point.verified`.
    """
    layers = list(layers) if layers is not None else fig4_layers()
    budgets = list(budgets) if budgets is not None else DEFAULT_BUDGETS
    strategies = list(strategies) if strategies is not None else list(STRATEGIES)
    soc = get_platform("diana", params=params)
    accel = soc.accelerator("soc.digital")
    cache = get_default_cache()

    def _point(task) -> Fig4Point:
        spec, strat, budget = task
        tiler = DoryTiler("soc.digital", soc.params, STRATEGIES[strat](),
                          l1_budget=budget)
        try:
            sol = (cache.solve(tiler, spec) if cache is not None
                   else tiler.solve(spec))
        except TilingError:
            return Fig4Point(spec.name, strat, budget, None)
        rec = cost_layer(spec, sol, accel, soc.params)
        cfg = sol.cfg
        return Fig4Point(
            spec.name, strat, budget, rec.total_cycles,
            needs_tiling=sol.needs_tiling,
            tile=f"K{cfg.k_t}xOY{cfg.oy_t}xOX{cfg.ox_t}",
            verified=(_verify_point(accel, spec, sol, exec_mode)
                      if verify and spec.kind in ("conv2d", "dwconv2d")
                      else None),
        )

    tasks = [(spec, strat, budget) for spec in layers
             for strat in strategies for budget in budgets]
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [_point(t) for t in tasks]
    with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(_point, tasks))


def max_heuristic_speedup(points: List[Fig4Point]) -> float:
    """Max baseline/full cycle ratio over all (layer, budget) pairs.

    This is the figure's headline "up to 6.2x faster execution".
    """
    by_key: Dict[tuple, Dict[str, float]] = {}
    for p in points:
        if p.cycles is not None:
            by_key.setdefault((p.layer, p.budget_bytes), {})[p.strategy] = p.cycles
    best = 1.0
    for cell in by_key.values():
        if "baseline" in cell and "full" in cell and cell["full"] > 0:
            best = max(best, cell["baseline"] / cell["full"])
    return best


def format_fig4(points: List[Fig4Point]) -> str:
    """Per-layer table: cycles per strategy across the budget sweep."""
    by_layer: Dict[str, Dict[int, Dict[str, Fig4Point]]] = {}
    for p in points:
        by_layer.setdefault(p.layer, {}).setdefault(
            p.budget_bytes, {})[p.strategy] = p
    blocks = []
    for layer, by_budget in by_layer.items():
        headers = ["L1 budget kB", "baseline", "pe-only", "full",
                   "speedup", "tiling?"]
        rows = []
        for budget in sorted(by_budget, reverse=True):
            cell = by_budget[budget]
            base = cell.get("baseline")
            full = cell.get("full")
            speedup = None
            if base and full and base.cycles and full.cycles:
                speedup = f"{base.cycles / full.cycles:.2f}x"
            rows.append([
                budget // 1024,
                None if not base or base.cycles is None else f"{base.cycles:.0f}",
                None if "pe-only" not in cell or cell["pe-only"].cycles is None
                else f"{cell['pe-only'].cycles:.0f}",
                None if not full or full.cycles is None else f"{full.cycles:.0f}",
                speedup,
                None if not full else
                ("no" if full.needs_tiling is False else "yes"),
            ])
        blocks.append(format_table(headers, rows,
                                   title=f"Fig. 4 — layer {layer} (cycles)"))
    return "\n\n".join(blocks)
