"""Table II: comparison with state-of-the-art tools and platforms.

The paper compares HTVM-on-DIANA against latencies *published* in the
MLPerf Tiny v1.0 result list for an STM32L4R5ZIT6U (TVM and
TVM+CMSIS-NN kernels) and a GAP9 compiled with GreenWaves' GAPflow, all
normalized to a 260 MHz clock. We do the same: the competitor columns
are the published constants (we cannot re-run closed platforms), and
the HTVM column is re-measured on the simulated DIANA in the digital
configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..soc import DianaParams
from .harness import deploy
from .paper import TABLE2
from .tables import format_table

MODELS = ("dscnn", "mobilenet", "resnet", "toyadmos")
PLATFORMS = ("stm32-tvm", "stm32-cmsis", "gap9-gapflow")


def run_table2(params: Optional[DianaParams] = None,
               verify: bool = False) -> Dict[str, Dict[str, float]]:
    """Published columns + our measured HTVM/DIANA-digital latency."""
    out: Dict[str, Dict[str, float]] = {}
    for model in MODELS:
        row = dict(TABLE2[model])
        res = deploy(model, "digital", params=params, verify=verify)
        row["htvm-diana-digital (measured)"] = res.latency_ms
        out[model] = row
    return out


def speedups(table: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Measured-HTVM speed-up vs. every published platform."""
    out: Dict[str, Dict[str, float]] = {}
    for model, row in table.items():
        ours = row["htvm-diana-digital (measured)"]
        out[model] = {
            platform: row[platform] / ours for platform in PLATFORMS
        }
    return out


def format_table2(table: Dict[str, Dict[str, float]]) -> str:
    headers = ["model"] + list(PLATFORMS) + [
        "paper HTVM", "measured HTVM", "vs STM-TVM", "vs GAP9"]
    rows: List[list] = []
    for model, row in table.items():
        ours = row["htvm-diana-digital (measured)"]
        rows.append([
            model,
            *(f"{row[p]:.2f}" for p in PLATFORMS),
            f"{row['htvm-diana-digital']:.2f}",
            f"{ours:.2f}",
            f"{row['stm32-tvm'] / ours:.0f}x",
            f"{row['gap9-gapflow'] / ours:.2f}x",
        ])
    return format_table(
        headers, rows,
        title="Table II — SotA comparison, latency ms @ 260 MHz "
              "(competitor columns are published values)")
