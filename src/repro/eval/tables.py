"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width table; values are str()-ed, None prints as '-'."""
    cells = [[("-" if v is None else str(v)) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_ms(value: Optional[float]) -> Optional[str]:
    if value is None:
        return None
    return f"{value:.2f}"


def fmt_ratio(ours: Optional[float], paper: Optional[float]) -> Optional[str]:
    if ours is None or paper is None or paper == 0:
        return None
    return f"{ours / paper:.2f}x"
