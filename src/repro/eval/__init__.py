"""Evaluation harness: Tables I-II and Figs. 4-5 of the paper."""

from . import fig4, fig5, layer_report, mapping_dse, paper, sota, sweep, timeline
from .harness import (
    CONFIGS, DeploymentResult, deploy, deploy_artifact,
    format_table1, run_table1,
    summarize_claims,
)
from .tables import format_table

__all__ = [
    "fig4", "fig5", "layer_report", "mapping_dse", "paper", "sota", "sweep",
    "timeline",
    "CONFIGS", "DeploymentResult", "deploy", "deploy_artifact",
    "format_table1", "run_table1",
    "summarize_claims", "format_table",
]
