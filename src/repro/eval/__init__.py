"""Evaluation harness: Tables I-II and Figs. 4-5 of the paper."""

from . import (
    depthfirst, dse, fig4, fig5, layer_report, mapping_dse, paper, sota,
    sweep, timeline,
)
from .depthfirst import (
    DepthFirstReport, depthfirst_report, format_depthfirst_reports,
    run_depthfirst_reports,
)
from .harness import (
    CONFIGS, DeploymentResult, deploy, deploy_artifact,
    format_table1, run_table1,
    summarize_claims,
)
from .tables import format_table

__all__ = [
    "depthfirst", "dse", "fig4", "fig5", "layer_report", "mapping_dse",
    "paper", "sota", "sweep", "timeline",
    "DepthFirstReport", "depthfirst_report", "format_depthfirst_reports",
    "run_depthfirst_reports",
    "CONFIGS", "DeploymentResult", "deploy", "deploy_artifact",
    "format_table1", "run_table1",
    "summarize_claims", "format_table",
]
