"""Closed-loop load generation against the serving fleet.

Drives a :class:`~repro.serve.fleet.ServingFleet` with N concurrent
client threads, each issuing requests back-to-back (closed loop: a
client waits for its response — or typed rejection — before sending
the next). Every outcome is accounted: the report distinguishes
completions from each rejection/failure class by its stable ``S-*``
code, so chaos benchmarks can assert *zero lost requests* — accepted
work either completed or failed with a typed serving error.

Used by ``repro serve --fleet --load N`` and
``benchmarks/bench_fleet.py``; see ``docs/RESILIENCE.md`` for the
chaos matrix the benchmark runs under.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import (
    ServingError, ServingOverloadError, ServingTimeoutError,
    ServingUnavailableError,
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(round(q / 100.0 * len(ordered) + 0.5)), 1)
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadReport:
    """Outcome of one load-generation run (all latencies in ms)."""

    clients: int = 0
    duration_s: float = 0.0
    issued: int = 0          #: submit attempts
    completed: int = 0       #: futures resolved with an output
    rejected: int = 0        #: fast-failed at admission (overload/shed)
    unavailable: int = 0     #: breaker open / terminal deployment
    timeouts: int = 0        #: deadline or wait timeouts
    failed: int = 0          #: other typed serving failures
    lost: int = 0            #: accepted but never resolved — must be 0
    errors_by_code: Dict[str, int] = field(default_factory=dict)
    #: first few client-visible request ids per error code (capped at
    #: :data:`LEDGER_CAP` each) — the handle for chasing one failure
    #: through logs and traces
    request_ids_by_code: Dict[str, List[str]] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return self.issued - self.rejected - self.unavailable

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def latency_summary(self) -> Dict[str, float]:
        lat = self.latencies_ms
        return {
            "p50_ms": round(percentile(lat, 50), 3),
            "p95_ms": round(percentile(lat, 95), 3),
            "p99_ms": round(percentile(lat, 99), 3),
            "max_ms": round(max(lat), 3) if lat else 0.0,
            "mean_ms": round(sum(lat) / len(lat), 3) if lat else 0.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_s, 3),
            "issued": self.issued,
            "completed": self.completed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "unavailable": self.unavailable,
            "timeouts": self.timeouts,
            "failed": self.failed,
            "lost": self.lost,
            "throughput_rps": round(self.throughput_rps, 2),
            "errors_by_code": dict(sorted(self.errors_by_code.items())),
            "request_ids_by_code": {
                k: list(v)
                for k, v in sorted(self.request_ids_by_code.items())},
            **self.latency_summary(),
        }


def run_load(fleet, key: str, feeds: Dict[str, Any], *, clients: int = 4,
             requests_per_client: int = 25,
             deadline_s: Optional[float] = 30.0,
             result_timeout_s: float = 60.0,
             think_time_s: float = 0.0,
             priority: int = 0,
             backoff_on_reject_s: float = 0.005) -> LoadReport:
    """Closed-loop load: ``clients`` threads x ``requests_per_client``.

    A rejected submit (overload / breaker open) is *counted*, not
    retried against the budget — each client still issues exactly
    ``requests_per_client`` attempts, so acceptance under pressure is
    visible in the report. ``lost`` counts accepted requests whose
    future neither resolved nor failed within ``result_timeout_s``;
    the fleet's contract is that this is always zero.
    """
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def _client(idx: int) -> None:
        for _ in range(requests_per_client):
            with lock:
                report.issued += 1
            t0 = time.monotonic()
            try:
                fut = fleet.submit(key, feeds, priority=priority,
                                   deadline_s=deadline_s)
            except ServingOverloadError as exc:
                with lock:
                    report.rejected += 1
                    _count(report, exc)
                if exc.retry_after:
                    time.sleep(min(exc.retry_after, backoff_on_reject_s))
                continue
            except ServingUnavailableError as exc:
                with lock:
                    report.unavailable += 1
                    _count(report, exc)
                time.sleep(backoff_on_reject_s)
                continue
            try:
                fut.result(timeout=result_timeout_s)
                with lock:
                    report.completed += 1
                    report.latencies_ms.append(
                        1e3 * (time.monotonic() - t0))
            except ServingTimeoutError as exc:
                with lock:
                    if fut.done():
                        report.timeouts += 1
                        _count(report, exc)
                    else:
                        # wait timeout with the future still pending:
                        # the request is unaccounted — a lost request
                        report.lost += 1
                        _ledger(report, "LOST",
                                getattr(fut, "request_id", ""))
            except ServingError as exc:
                with lock:
                    report.failed += 1
                    _count(report, exc)
            if think_time_s:
                time.sleep(think_time_s)

    threads = [threading.Thread(target=_client, args=(i,), daemon=True)
               for i in range(clients)]
    t_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.duration_s = time.monotonic() - t_start
    return report


#: request ids kept per error code in the report's ledger.
LEDGER_CAP = 8


def _count(report: LoadReport, exc: ServingError) -> None:
    code = getattr(exc, "code", "S-GENERIC")
    report.errors_by_code[code] = report.errors_by_code.get(code, 0) + 1
    _ledger(report, code, getattr(exc, "request_id", None))


def _ledger(report: LoadReport, code: str,
            request_id: Optional[str]) -> None:
    if not request_id:
        return
    ids = report.request_ids_by_code.setdefault(code, [])
    if len(ids) < LEDGER_CAP:
        ids.append(request_id)


def format_load_report(report: LoadReport) -> str:
    """One-paragraph human summary for the CLI."""
    lat = report.latency_summary()
    lines = [
        f"clients={report.clients} issued={report.issued} "
        f"completed={report.completed} rejected={report.rejected} "
        f"unavailable={report.unavailable} timeouts={report.timeouts} "
        f"failed={report.failed} lost={report.lost}",
        f"throughput={report.throughput_rps:.1f} req/s over "
        f"{report.duration_s:.2f}s",
        f"latency p50={lat['p50_ms']:.1f}ms p95={lat['p95_ms']:.1f}ms "
        f"p99={lat['p99_ms']:.1f}ms max={lat['max_ms']:.1f}ms",
    ]
    if report.errors_by_code:
        pairs = ", ".join(f"{k}={v}" for k, v in
                          sorted(report.errors_by_code.items()))
        lines.append(f"error codes: {pairs}")
    for code, ids in sorted(report.request_ids_by_code.items()):
        shown = ", ".join(ids[:4])
        more = f" (+{len(ids) - 4} more)" if len(ids) > 4 else ""
        lines.append(f"  {code}: {shown}{more}")
    return "\n".join(lines)
