"""Design-space exploration sweeps.

Because both the compiler and the platform are parameterized, the
reproduction doubles as an architectural what-if tool: how would the
MLPerf Tiny results change with a smaller L1, a bigger PE array, a
faster DMA port, or a different weight memory? The paper motivates
exactly this kind of hardware/software co-design loop (Sec. II:
"Hardware-software co-design is a crucial ingredient").

Each sweep recompiles (the tiler adapts to the new constraints) and
re-simulates, so results include compiler adaptation, not just linear
scaling.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ReproError
from ..soc import DianaParams
from .harness import deploy
from .tables import format_table


@dataclass
class SweepPoint:
    """One (parameter value, model) measurement."""

    param: str
    value: object
    model: str
    config: str
    latency_ms: Optional[float]
    size_kb: Optional[float]
    oom: bool = False


def sweep_param(param: str, values: Sequence, model: str = "resnet",
                config: str = "digital",
                base: Optional[DianaParams] = None,
                jobs: Optional[int] = None,
                exec_mode: str = "fast",
                mapping: Optional[str] = None) -> List[SweepPoint]:
    """Re-deploy ``model`` while sweeping one platform parameter.

    ``param`` must be a field of :class:`~repro.soc.DianaParams`
    (e.g. ``"l1_bytes"``, ``"dma_act_bytes_per_cycle"``,
    ``"dig_weight_bytes"``). ``mapping`` selects the mapping strategy
    each point compiles with (the cost-driven mapper re-adapts the
    assignment to every swept platform).

    Sweeps default to ``exec_mode="fast"``: cycle counts (the sweep's
    output) are identical to tiled execution, and tile-accurate
    functional simulation of every point would only burn wall-clock —
    pass ``exec_mode="tiled"`` to re-verify schedules anyway.

    ``jobs > 1`` evaluates the sweep points concurrently; each point is
    an independent (params, model) deployment, so the result list is
    identical to the serial one (and stays in ``values`` order).
    """
    base = base or DianaParams()
    if not hasattr(base, param):
        raise ReproError(f"unknown platform parameter {param!r}")

    def _point(value) -> SweepPoint:
        params = base.with_overrides(**{param: value})
        try:
            r = deploy(model, config, params=params, verify=False,
                       exec_mode=exec_mode, mapping=mapping)
        except ReproError:
            return SweepPoint(param, value, model, config,
                              None, None, oom=True)
        return SweepPoint(
            param, value, model, config,
            latency_ms=r.latency_ms, size_kb=r.size_kb, oom=r.oom)

    values = list(values)
    if jobs is None or jobs <= 1 or len(values) <= 1:
        return [_point(v) for v in values]
    with ThreadPoolExecutor(max_workers=min(jobs, len(values))) as pool:
        return list(pool.map(_point, values))


def l1_size_sweep(model: str = "resnet",
                  sizes_kb: Sequence[int] = (256, 128, 64, 32, 16, 8),
                  config: str = "digital") -> List[SweepPoint]:
    """How much shared L1 does the deployment actually need?"""
    return sweep_param("l1_bytes", [kb * 1024 for kb in sizes_kb],
                       model=model, config=config)


def weight_memory_sweep(model: str = "toyadmos",
                        sizes_kb: Sequence[int] = (64, 32, 16, 8),
                        config: str = "digital") -> List[SweepPoint]:
    """Shrinking the digital weight memory forces more K-tiling."""
    return sweep_param("dig_weight_bytes", [kb * 1024 for kb in sizes_kb],
                       model=model, config=config)


def format_sweep(points: List[SweepPoint], unit: str = "") -> str:
    if not points:
        return "(empty sweep)"
    param = points[0].param
    rows = []
    for p in points:
        rows.append([
            f"{p.value}{unit}",
            "OoM/infeasible" if (p.oom or p.latency_ms is None)
            else f"{p.latency_ms:.3f}",
            None if p.size_kb is None else f"{p.size_kb:.0f}",
        ])
    return format_table(
        [param, f"{points[0].model} {points[0].config} ms", "size kB"],
        rows, title=f"sweep: {param} ({points[0].model}/{points[0].config})")
