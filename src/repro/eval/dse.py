"""Fleet-scale design-space exploration: ``repro dse``.

The registry (:mod:`repro.soc.registry`) makes platforms first-class
values, which turns the paper's per-platform evaluation into a grid
search: sweep **platform x model x L1-budget x mapping-objective**,
price every cell with the mapping engine's modeled totals (per-layer
kernel cycles/energy plus inter-core transfer penalties — no
functional simulation, so the whole grid runs in seconds through the
shared :class:`~repro.core.cache.TilingCache`), and mark the per-model
(latency, energy) Pareto front across platforms.

This generalizes the two earlier eval services it composes:

* the ``--jobs`` thread fan-out of ``repro table1`` prices independent
  cells concurrently (one cell = one ``analyze_mapping`` call), and
* the ``MAPPING_DSE.json`` Pareto artifact of ``repro map --pareto``
  becomes the committed ``DSE_GRID.json`` (schema ``repro-dse/1``),
  reproducibility-gated in CI exactly like the mapping artifact.

Each platform prices the zoo at the precision its spec declares
(``PlatformSpec.model_precision``): the analog-only ablation explores
ternary networks, the digital-only ablation int8, the stock DIANA the
paper's mixed-precision deployments.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import TilingCache, get_default_cache
from ..core.config import HTVM
from ..errors import PlatformError, ReproError
from ..frontend.modelzoo import MLPERF_TINY
from ..mapping import analyze_mapping, make_objective, prepare_graph
from ..soc import get_platform, get_platform_spec, latency_ms
from .tables import format_table

#: schema tag of the committed grid artifact.
DSE_SCHEMA = "repro-dse/1"

#: default grid axes (platforms x models x L1 budgets x objectives).
DEFAULT_PLATFORMS: Tuple[str, ...] = ("diana", "diana-noanalog",
                                      "diana-nodig")
DEFAULT_BUDGETS_KB: Tuple[int, ...] = (64, 256)
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("latency", "energy")


@dataclass
class DsePoint:
    """One priced cell of the DSE grid."""

    platform: str
    model: str
    budget_kb: int
    objective: str
    precision: str = ""
    strategy: str = "dp"
    feasible: bool = True
    error: str = ""
    cycles: float = 0.0
    energy_pj: float = 0.0
    latency_ms: float = 0.0
    energy_uj: float = 0.0
    target_counts: Dict[str, int] = field(default_factory=dict)
    signature: str = ""           #: digest of the chosen assignment
    pareto: bool = False          #: on the per-model (cycles, energy) front

    @property
    def key(self) -> Tuple[str, str, int, str]:
        return (self.platform, self.model, self.budget_kb, self.objective)


def _price_cell(platform: str, model: str, budget_kb: int, objective: str,
                strategy: str, cache: TilingCache) -> DsePoint:
    """Run one mapping search; errors become an infeasible point."""
    point = DsePoint(platform=platform, model=model, budget_kb=budget_kb,
                     objective=objective, strategy=strategy)
    try:
        spec = get_platform_spec(platform)
        point.precision = spec.model_precision
        soc = get_platform(platform)
        cfg = HTVM.with_overrides(platform=platform,
                                  l1_budget=budget_kb * 1024,
                                  mapping_strategy=strategy,
                                  mapping_objective=objective)
        pgraph = prepare_graph(MLPERF_TINY[model](
            precision=spec.model_precision))
        plan = analyze_mapping(pgraph, soc, cfg, cache=cache,
                               strategy=strategy,
                               objective=make_objective(objective))
    except ReproError as exc:
        point.feasible = False
        point.error = f"{type(exc).__name__}: {exc}"
        return point
    point.cycles = plan.total_cycles
    point.energy_pj = plan.total_energy_pj
    point.latency_ms = latency_ms(plan.total_cycles, soc.params)
    point.energy_uj = plan.total_energy_pj / 1e6
    point.target_counts = dict(plan.target_counts)
    point.signature = hashlib.sha256(
        json.dumps(list(plan.assignment)).encode()).hexdigest()[:16]
    return point


def _mark_pareto(points: List[DsePoint]) -> None:
    """Per-model (cycles, energy) front across platforms and budgets."""
    by_model: Dict[str, List[DsePoint]] = {}
    for p in points:
        if p.feasible:
            by_model.setdefault(p.model, []).append(p)
    for group in by_model.values():
        for p in group:
            p.pareto = not any(
                (q.cycles <= p.cycles and q.energy_pj <= p.energy_pj
                 and (q.cycles < p.cycles or q.energy_pj < p.energy_pj))
                for q in group)


def sweep_grid(platforms: Optional[Sequence[str]] = None,
               models: Optional[Sequence[str]] = None,
               budgets_kb: Optional[Sequence[int]] = None,
               objectives: Optional[Sequence[str]] = None,
               strategy: str = "dp",
               jobs: int = 1,
               cache: Optional[TilingCache] = None) -> List[DsePoint]:
    """Price the full grid, fanning independent cells across threads.

    Cell order in the result is deterministic (the nested-loop order of
    the axes) regardless of ``jobs``, so the emitted artifact is
    byte-stable — the property the CI ``dse-smoke`` gate relies on.
    """
    platforms = list(platforms) if platforms else list(DEFAULT_PLATFORMS)
    models = list(models) if models else sorted(MLPERF_TINY)
    budgets_kb = list(budgets_kb) if budgets_kb else list(DEFAULT_BUDGETS_KB)
    objectives = list(objectives) if objectives else list(DEFAULT_OBJECTIVES)

    for name in platforms:
        get_platform_spec(name)  # unknown platforms fail before the sweep
    for m in models:
        if m not in MLPERF_TINY:
            raise PlatformError(
                f"unknown model {m!r}; have {sorted(MLPERF_TINY)}")
    if cache is None:
        cache = get_default_cache()  # honors the CLI --no-cache/--cache-file

    cells = [(p, m, b, o)
             for p in platforms
             for m in models
             for b in budgets_kb
             for o in objectives]
    if jobs > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            points = list(pool.map(
                lambda c: _price_cell(*c, strategy, cache), cells))
    else:
        points = [_price_cell(*c, strategy, cache) for c in cells]
    _mark_pareto(points)
    return points


def artifact_record(points: Sequence[DsePoint],
                    strategy: str = "dp",
                    jobs: int = 1) -> dict:
    """The JSON-serializable ``DSE_GRID.json`` payload (repro-dse/1).

    Deterministic for a given grid: cell order follows the sweep, and
    nothing host- or time-dependent is recorded (``jobs`` only states
    how the committed file was produced; it does not change content).
    """
    grid = []
    for p in points:
        cell = {
            "platform": p.platform,
            "model": p.model,
            "budget_kb": p.budget_kb,
            "objective": p.objective,
            "precision": p.precision,
            "feasible": p.feasible,
        }
        if p.feasible:
            cell.update({
                "cycles": p.cycles,
                "energy_pj": p.energy_pj,
                "latency_ms": round(p.latency_ms, 6),
                "energy_uj": round(p.energy_uj, 6),
                "targets": dict(sorted(p.target_counts.items())),
                "signature": p.signature,
                "pareto": p.pareto,
            })
        else:
            cell["error"] = p.error
        grid.append(cell)
    return {
        "schema": DSE_SCHEMA,
        "strategy": strategy,
        "platforms": sorted({p.platform for p in points}),
        "models": sorted({p.model for p in points}),
        "budgets_kb": sorted({p.budget_kb for p in points}),
        "objectives": sorted({p.objective for p in points}),
        "cells": len(grid),
        "grid": grid,
    }


def validate_record(record: dict) -> List[str]:
    """Schema-check one ``repro-dse/1`` document; returns problems."""
    problems = []
    if record.get("schema") != DSE_SCHEMA:
        problems.append(f"schema is {record.get('schema')!r}, "
                        f"expected {DSE_SCHEMA!r}")
        return problems
    for key in ("strategy", "platforms", "models", "budgets_kb",
                "objectives", "cells", "grid"):
        if key not in record:
            problems.append(f"missing top-level key {key!r}")
    grid = record.get("grid", [])
    if record.get("cells") != len(grid):
        problems.append(f"cells={record.get('cells')} but grid holds "
                        f"{len(grid)} entries")
    for i, cell in enumerate(grid):
        for key in ("platform", "model", "budget_kb", "objective",
                    "feasible"):
            if key not in cell:
                problems.append(f"grid[{i}] missing {key!r}")
        if cell.get("feasible"):
            for key in ("cycles", "energy_pj", "latency_ms", "energy_uj",
                        "targets", "signature", "pareto"):
                if key not in cell:
                    problems.append(f"grid[{i}] missing {key!r}")
        elif "error" not in cell and "feasible" in cell:
            problems.append(f"grid[{i}] infeasible but has no 'error'")
    return problems


def diff_records(committed: dict, fresh: dict) -> List[str]:
    """Cell-level drift between a committed grid and a fresh sweep.

    Only cells present in the committed grid are compared, so a
    committed full grid still gates a narrower CI re-sweep.
    """
    problems = []
    fresh_by_key = {(c["platform"], c["model"], c["budget_kb"],
                     c["objective"]): c for c in fresh.get("grid", [])}
    for cell in committed.get("grid", []):
        key = (cell["platform"], cell["model"], cell["budget_kb"],
               cell["objective"])
        other = fresh_by_key.get(key)
        if other is None:
            continue
        label = "/".join(str(k) for k in key)
        for attr in ("feasible", "cycles", "energy_pj", "signature",
                     "targets"):
            if cell.get(attr) != other.get(attr):
                problems.append(
                    f"{label}: {attr} drifted "
                    f"({cell.get(attr)!r} -> {other.get(attr)!r})")
    return problems


def format_dse(points: Sequence[DsePoint]) -> str:
    """The human-readable grid table ``repro dse`` prints."""
    headers = ["platform", "model", "prec", "L1 kB", "objective",
               "latency ms", "energy uJ", "mapping (targets)", "front"]
    rows = []
    for p in sorted(points, key=lambda q: (q.model, q.platform,
                                           q.budget_kb, q.objective)):
        if not p.feasible:
            rows.append([p.platform, p.model, p.precision,
                         str(p.budget_kb), p.objective, "-", "-",
                         f"infeasible: {p.error[:40]}", ""])
            continue
        counts = ", ".join(f"{t.split('.')[-1]}:{n}" for t, n in
                           sorted(p.target_counts.items()))
        rows.append([
            p.platform, p.model, p.precision, str(p.budget_kb),
            p.objective, f"{p.latency_ms:.3f}", f"{p.energy_uj:.1f}",
            counts, "pareto" if p.pareto else "",
        ])
    return format_table(
        headers, rows,
        title="Platform DSE — modeled platform x model x budget x "
              "objective grid")
