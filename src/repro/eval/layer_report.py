"""Per-layer deployment reports.

DORY-style layer tables for a compiled + executed model: geometry,
target, tiling, cycles by phase, throughput, and energy — the view an
embedded developer uses to find the layer that blows the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.program import AccelStep, CompiledModel, CpuKernelStep
from ..runtime.executor import ExecutionResult
from ..soc.energy import kernel_energy_pj
from ..soc.params import DianaParams
from .tables import format_table


@dataclass
class LayerRow:
    """One row of the per-layer report."""

    name: str
    target: str
    geometry: str
    tiles: int
    cycles: float
    macs: int
    energy_uj: float

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


def _geometry_of(step) -> str:
    if isinstance(step, AccelStep):
        s = step.spec
        if s.kind == "dense":
            return f"dense {s.in_channels}->{s.out_channels}"
        if s.kind == "add":
            return f"add {s.in_channels}x{s.oy}x{s.ox}"
        tag = "dw" if s.is_depthwise else "conv"
        return (f"{tag} {s.in_channels}->{s.out_channels} "
                f"{s.fy}x{s.fx}/{s.strides[0]} @{s.oy}x{s.ox}")
    if isinstance(step, CpuKernelStep):
        ops = "+".join(c.op.split(".")[-1] for c in step.body.calls())
        return ops[:34]
    return "?"


def layer_report(model: CompiledModel, result: ExecutionResult,
                 params: DianaParams) -> List[LayerRow]:
    """Join the compiled steps with their execution records."""
    rows: List[LayerRow] = []
    for step, rec in zip(model.steps, result.perf.records):
        tiles = rec.num_tiles
        rows.append(LayerRow(
            name=step.name,
            target=step.target,
            geometry=_geometry_of(step),
            tiles=tiles,
            cycles=rec.total_cycles,
            macs=rec.macs,
            energy_uj=kernel_energy_pj(rec, params) / 1e6,
        ))
    return rows


def format_layer_report(rows: List[LayerRow],
                        top: Optional[int] = None) -> str:
    """Render the report, optionally only the ``top`` slowest layers."""
    selected = rows
    title = "per-layer report"
    if top is not None:
        selected = sorted(rows, key=lambda r: -r.cycles)[:top]
        title = f"per-layer report — top {top} by cycles"
    total_cycles = sum(r.cycles for r in rows) or 1.0
    table_rows = [[
        r.name, r.target, r.geometry, r.tiles,
        f"{r.cycles:,.0f}", f"{100 * r.cycles / total_cycles:.1f}%",
        f"{r.macs_per_cycle:.1f}", f"{r.energy_uj:.2f}",
    ] for r in selected]
    return format_table(
        ["layer", "target", "geometry", "tiles", "cycles", "share",
         "MAC/cy", "uJ"],
        table_rows, title=title)
