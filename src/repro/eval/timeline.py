"""Execution timeline — the paper's Fig. 2 "time diagram".

Fig. 2 of the paper shows a network deployed with HTVM as a sequence of
kernel executions on the host and the accelerators, with DMA phases in
between. This module renders the same view from the executor's
performance counters: an ASCII Gantt chart with one lane per execution
target plus a per-kernel phase breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..soc.perf import PerfCounters

#: phase display order + one-letter glyphs for the chart
_PHASES = [
    ("runtime", "r"),
    ("weight_dma", "W"),
    ("act_dma", "D"),
    ("accel_compute", "#"),
    ("tile_loop", "l"),
    ("cpu_compute", "C"),
]


@dataclass
class TimelineEntry:
    """One kernel occupying [start, end) cycles on its target lane."""

    name: str
    target: str
    start: float
    end: float
    phases: dict

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_timeline(perf: PerfCounters) -> List[TimelineEntry]:
    """Sequential timeline (HTVM executes kernels back-to-back)."""
    entries: List[TimelineEntry] = []
    cursor = 0.0
    for rec in perf.records:
        end = cursor + rec.total_cycles
        entries.append(TimelineEntry(
            name=rec.name, target=rec.target, start=cursor, end=end,
            phases=dict(rec.cycles)))
        cursor = end
    return entries


def render_timeline(perf: PerfCounters, width: int = 72) -> str:
    """ASCII Gantt chart, one lane per target (cf. paper Fig. 2)."""
    entries = build_timeline(perf)
    if not entries:
        return "(empty timeline)"
    total = entries[-1].end
    scale = width / total if total else 0.0
    lanes = sorted({e.target for e in entries})
    lines = [f"timeline: {total:,.0f} cycles total "
             f"({total / 260e3:.3f} ms @ 260 MHz)"]
    for lane in lanes:
        row = [" "] * width
        for e in entries:
            if e.target != lane:
                continue
            lo = min(int(e.start * scale), width - 1)
            hi = max(lo + 1, min(int(e.end * scale), width))
            for i in range(lo, hi):
                row[i] = "#" if lane != "cpu" else "C"
        lines.append(f"{lane:<12} |{''.join(row)}|")
    lines.append("")
    lines.append(f"{'kernel':<34} {'target':<12} {'cycles':>10}  phases")
    for e in entries:
        breakdown = " ".join(
            f"{glyph}:{e.phases[cat]:,.0f}"
            for cat, glyph in _PHASES if e.phases.get(cat))
        lines.append(f"{e.name:<34} {e.target:<12} {e.duration:>10,.0f}  "
                     f"{breakdown}")
    lines.append("")
    lines.append("phase key: " + ", ".join(
        f"{glyph}={cat}" for cat, glyph in _PHASES))
    return "\n".join(lines)


def utilization_by_target(perf: PerfCounters) -> dict:
    """Fraction of total execution time each target is busy."""
    total = perf.total_cycles
    if not total:
        return {}
    return {target: cycles / total
            for target, cycles in perf.cycles_by_target().items()}
