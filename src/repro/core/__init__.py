"""Compiler core: driver, configurations, caching, compiled-program types."""

from .artifact import compute_size
from .cache import TilingCache, get_default_cache, set_default_cache
from .compiler import compile_model
from .config import CompilerConfig, HTVM, HTVM_NAIVE_TILING, TVM_CPU
from .program import (
    AccelStep, BufferSpec, CompiledModel, CpuKernelStep, SizeBreakdown, Step,
)

__all__ = [
    "compute_size", "compile_model",
    "TilingCache", "get_default_cache", "set_default_cache",
    "CompilerConfig", "HTVM", "HTVM_NAIVE_TILING", "TVM_CPU",
    "AccelStep", "BufferSpec", "CompiledModel", "CpuKernelStep",
    "SizeBreakdown", "Step",
]
