"""Compiler core: driver, configurations, compiled-program types."""

from .artifact import compute_size
from .compiler import compile_model
from .config import CompilerConfig, HTVM, HTVM_NAIVE_TILING, TVM_CPU
from .program import (
    AccelStep, BufferSpec, CompiledModel, CpuKernelStep, SizeBreakdown, Step,
)

__all__ = [
    "compute_size", "compile_model",
    "CompilerConfig", "HTVM", "HTVM_NAIVE_TILING", "TVM_CPU",
    "AccelStep", "BufferSpec", "CompiledModel", "CpuKernelStep",
    "SizeBreakdown", "Step",
]
