"""The HTVM compilation driver (paper Fig. 1).

``compile_model`` runs the full flow:

1. TVM-style front-end optimizations (canonicalize, constant folding,
   dead-code elimination),
2. accelerator-aware pattern matching + BYOC partitioning,
3. mapping: per-accelerator rule checks plus target selection —
   rule-based or a cost-driven global search, selected by
   ``config.mapping_strategy`` (see :mod:`repro.mapping`),
4. native CPU fusion for everything unmatched,
5. per-layer DORY tiling for the offloaded composites,
6. L2 activation memory planning,
7. C code emission and binary-size accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..codegen.cpu import emit_cpu_kernel, kernel_signature
from ..codegen.runtime_glue import (
    RUNTIME_HEADER, emit_network, emit_runtime_header,
)
from ..mapping import layer_spec_of, plan_mapping
from ..dory.codegen import emit_accel_layer
from ..dory.heuristics import heuristic_set_for
from ..dory.memory_plan import TensorLife, lifetimes_from_steps, plan_memory
from ..dory.tiler import DoryTiler
from ..errors import CodegenError, OutOfMemoryError
from ..ir import Composite, Graph
from ..obs.trace import trace_span
from ..soc.platform import Platform
from ..transforms import (
    PassManager, Pass, canonicalize, eliminate_dead_code, fold_constants,
    fuse_cpu_ops,
)
from ..patterns import default_specs, partition
from .artifact import compute_size
from .cache import TilingCache, get_default_cache
from .config import CompilerConfig, HTVM
from .program import AccelStep, BufferSpec, CompiledModel, CpuKernelStep


def _verify_stage(stage: str, graph: Graph) -> None:
    """Assert graph invariants, naming ``stage`` in any diagnostic."""
    from ..verify import assert_valid, verify_graph

    assert_valid(verify_graph(graph, stage=stage))


def _frontend(graph: Graph, config: CompilerConfig) -> Graph:
    pm = PassManager([
        Pass("canonicalize", canonicalize),
        Pass("fold_constants", fold_constants),
        Pass("dead_code", eliminate_dead_code),
    ])
    post_hook = None
    if config.verify_passes:
        def post_hook(name: str, g: Graph) -> None:
            _verify_stage(f"transform:{name}", g)
    return pm.run(graph, post_hook=post_hook)


def compile_model(graph: Graph, soc: Platform,
                  config: CompilerConfig = HTVM,
                  cache: Optional[TilingCache] = None) -> CompiledModel:
    """Compile ``graph`` for ``soc`` under ``config``.

    Returns a :class:`~repro.core.program.CompiledModel`; raises
    :class:`~repro.errors.OutOfMemoryError` if the deployment cannot
    fit L2 (with ``config.check_l2``).

    ``cache`` overrides the tiling-solution memo used for step 5; by
    default the process-wide cache is used when ``config.tiling_cache``
    is set (pass an explicit :class:`TilingCache` for isolation, e.g.
    in tests or sharded builds).

    When tracing is enabled (:func:`repro.obs.enable_tracing` or
    ``repro trace``) every phase — each front-end transform, the
    partitioner, the mapping search, each per-layer tiler solve, the
    L2 planner, and code emission — records a span under one
    ``compile.model`` root.
    """
    with trace_span("compile.model", category="compile",
                    model=graph.name, config=config.name):
        return _compile(graph, soc, config, cache)


def _compile(graph: Graph, soc: Platform, config: CompilerConfig,
             cache: Optional[TilingCache]) -> CompiledModel:
    if cache is None and config.tiling_cache:
        cache = get_default_cache()
    with trace_span("compile.frontend", category="compile"):
        graph = _frontend(graph, config)

    decisions = []
    if config.offload and soc.accelerators:
        with trace_span("compile.partition", category="compile"):
            graph = partition(graph, default_specs())
        if config.verify_passes:
            _verify_stage("transform:partition", graph)
        with trace_span("compile.mapping", category="compile",
                        strategy=config.mapping_strategy):
            graph, decisions = plan_mapping(graph, soc, config, cache=cache)
        if config.verify_passes:
            _verify_stage("transform:mapping", graph)
    with trace_span("compile.fuse_cpu_ops", category="compile"):
        graph = fuse_cpu_ops(graph)
    if config.verify_passes:
        _verify_stage("transform:fuse_cpu_ops", graph)

    # ---- steps over named buffers -----------------------------------------
    buffers: Dict[str, BufferSpec] = {}
    name_of: Dict[int, str] = {}
    for var in graph.inputs:
        buffers[var.name] = BufferSpec(var.name, var.ttype)
        name_of[var.node_id] = var.name

    steps: List = []
    kernel_sources: Dict[str, str] = {}
    kernel_names: Dict[int, str] = {}
    cpu_fn_by_sig: Dict[tuple, str] = {}

    composites = [n for n in graph.topo_order() if isinstance(n, Composite)]
    for i, comp in enumerate(composites):
        out_name = f"buf{i}_{comp.pattern_name.split('.')[-1]}"
        buffers[out_name] = BufferSpec(out_name, comp.ttype)
        name_of[comp.node_id] = out_name
        in_names = [name_of[inp.node_id] for inp in comp.inputs]

        if comp.target == "cpu":
            sig = kernel_signature(comp.body)
            if sig in cpu_fn_by_sig:
                fn_name = cpu_fn_by_sig[sig]
            else:
                fn_name = f"fused_kernel_{len(cpu_fn_by_sig)}"
                cpu_fn_by_sig[sig] = fn_name
                kernel_sources[f"{fn_name}.c"] = emit_cpu_kernel(fn_name, comp)
            step = CpuKernelStep(
                name=f"step{i}_{fn_name}", input_names=in_names,
                output_name=out_name, body=comp.body, signature=fn_name,
            )
        else:
            spec = layer_spec_of(comp, i)
            if spec is None:
                raise CodegenError(
                    f"composite {comp.pattern_name} dispatched to "
                    f"{comp.target} but has no layer spec")
            tiler = DoryTiler(
                comp.target, soc.params,
                heuristic_set_for(config.heuristics, comp.target),
                alpha=config.alpha, l1_budget=config.l1_budget,
            )
            with trace_span("compile.tiler_solve", category="compile",
                            layer=spec.name, target=comp.target):
                sol = (cache.solve(tiler, spec) if cache is not None
                       else tiler.solve(spec))
            fn_name = f"dory_layer_{i}"
            kernel_sources[f"{fn_name}.c"] = emit_accel_layer(
                fn_name, sol, soc.params)
            step = AccelStep(
                name=f"step{i}_{fn_name}", input_names=in_names,
                output_name=out_name, accel_target=comp.target,
                spec=spec, tiling=sol,
            )
        kernel_names[len(steps)] = fn_name
        steps.append(step)

    if not steps:
        raise CodegenError("graph compiled to zero kernels")
    output_name = name_of[graph.output.node_id]

    # ---- L2 planning --------------------------------------------------------
    step_io = [(s.input_names, s.output_name) for s in steps]
    sizes = {name: buf.size_bytes for name, buf in buffers.items()}
    input_names = [v.name for v in graph.inputs]
    with trace_span("compile.plan_memory", category="compile"):
        lifetimes = lifetimes_from_steps(step_io, sizes, input_names,
                                         output_name)
        plan = plan_memory(lifetimes, reuse=config.buffer_reuse)

    size = compute_size(steps, soc.params, runtime=config.runtime)

    # ---- depth-first fused schedules ---------------------------------------
    df_chains: List = []
    if config.depthfirst != "off" and config.offload and soc.accelerators:
        from ..extensions.depthfirst import plan_depthfirst_steps

        budget = soc.params.l2_bytes - size.total
        with trace_span("compile.depthfirst", category="compile",
                        mode=config.depthfirst):
            df_chains = plan_depthfirst_steps(
                steps, output_name, budget, mode=config.depthfirst,
                arena_bytes=plan.arena_bytes)
        if df_chains:
            # re-plan L2: chain interiors shrink to patch slabs, while
            # the chain input/output must stay live across the whole
            # fused schedule (every patch reads the input and writes
            # the output), so their lifetimes widen to the chain span.
            df_sizes = dict(sizes)
            for ch in df_chains:
                for j in range(ch.length - 1):
                    name = steps[ch.start + j].output_name
                    df_sizes[name] = min(df_sizes[name],
                                         ch.per_layer_patch_bytes[j])
            entries = {e.name: e for e in lifetimes_from_steps(
                step_io, df_sizes, input_names, output_name)}
            for ch in df_chains:
                last = ch.start + ch.length - 1
                produced = {s.output_name
                            for s in steps[ch.start:ch.start + ch.length]}
                # every external operand — the chain input AND any
                # interior residual add's skip — is read per patch
                # until the chain completes, so it must outlive the
                # whole span, not just its consuming step
                for step in steps[ch.start:ch.start + ch.length]:
                    for name in step.input_names:
                        if name in produced:
                            continue
                        e = entries[name]
                        entries[name] = TensorLife(
                            e.name, e.size, e.start, max(e.end, last))
                e = entries[steps[last].output_name]
                entries[steps[last].output_name] = TensorLife(
                    e.name, e.size, min(e.start, ch.start), e.end)
            df_plan = plan_memory(list(entries.values()),
                                  reuse=config.buffer_reuse)
            if df_plan.arena_bytes < plan.arena_bytes:
                plan = df_plan
            else:
                # the chains shrank their own residency but the arena
                # peak lives elsewhere: recompute would cost cycles for
                # zero L2 benefit, so fall back to layer-by-layer
                df_chains = []

    if config.check_l2 and size.total + plan.arena_bytes > soc.params.l2_bytes:
        raise OutOfMemoryError(
            f"{graph.name} [{config.name}]: image {size.total} B + "
            f"activation arena {plan.arena_bytes} B exceeds L2 "
            f"({soc.params.l2_bytes} B)"
        )

    with trace_span("compile.emit", category="compile",
                    kernels=len(kernel_sources)):
        kernel_sources[RUNTIME_HEADER] = emit_runtime_header()
        kernel_sources["network.c"] = emit_network(
            graph.name, steps, kernel_names, plan,
            [v.name for v in graph.inputs], output_name)

    compiled = CompiledModel(
        name=graph.name, config_name=config.name, steps=steps,
        buffers=buffers, input_names=[v.name for v in graph.inputs],
        output_name=output_name, memory_plan=plan, size=size,
        c_sources=kernel_sources, dispatch_decisions=decisions, graph=graph,
        depthfirst_chains=df_chains, platform=getattr(soc, "name", "diana"),
    )
    if config.verify_passes:
        from ..verify import assert_valid, verify_model

        assert_valid(verify_model(compiled, soc=soc, config=config))
    return compiled
