"""Binary-size model.

The paper's Table I compares compiled binary sizes (weights + code +
runtime in DIANA's 512 kB L2). The reproduction models each component
transparently:

* **runtime**: plain TVM ships its graph runtime (~16 kB); HTVM's
  "low-overhead runtime" is smaller (~10 kB).
* **CPU kernels**: TVM emits one function per *unique fused-kernel
  signature* — networks with many distinct layer shapes (ResNet's
  convolutions) pay per shape, while shape-repetitive networks
  (ToyAdmos' FC stack) share code.
* **accelerator drivers**: the DORY backend emits one driver per
  *layer* — smaller each than a TVM conv kernel ("DIANA's
  coarse-grained accelerator requires fewer instructions ... to perform
  certain operators"), but not deduplicated.
* **weights**: int8 raw for CPU/digital layers; 2-bit-packed ternary
  with IMC-macro row padding for analog layers (the padding is why some
  ternary networks have *larger* binaries, per Sec. IV-C).

This reproduces the direction of every Table I size delta; absolute
values are within ~15% (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..codegen.cpu import classify_body, kernel_signature
from ..ir import Constant
from ..soc.analog import AnalogAccelerator
from ..soc.params import DianaParams
from .program import AccelStep, CpuKernelStep, SizeBreakdown, Step


def _body_constant_bytes(body) -> int:
    total = 0
    for node in body.topo_order():
        if isinstance(node, Constant):
            total += node.value.storage_bytes
    return total


def compute_size(steps: List[Step], params: DianaParams,
                 runtime: str = "htvm") -> SizeBreakdown:
    """Model the deployed binary size for a compiled step list."""
    size = SizeBreakdown()
    size.runtime = (params.size_htvm_runtime if runtime == "htvm"
                    else params.size_tvm_runtime)

    seen_signatures: Set[Tuple] = set()
    analog = AnalogAccelerator(params)

    for step in steps:
        if isinstance(step, CpuKernelStep):
            sig = kernel_signature(step.body)
            if sig not in seen_signatures:
                seen_signatures.add(sig)
                kind = classify_body(step.body)
                size.cpu_kernels += params.size_cpu_kernel[kind]
            size.weights += _body_constant_bytes(step.body)
        elif isinstance(step, AccelStep):
            size.accel_drivers += params.size_accel_driver.get(
                step.accel_target, 1500)
            spec = step.spec
            if step.accel_target == "soc.analog":
                size.weights += analog.weight_storage_bytes(spec)
                if spec.bias is not None:
                    size.weights += spec.bias.nbytes
            else:
                if spec.weight is not None:
                    size.weights += spec.weight.size  # int8: 1 B/elem
                if spec.bias is not None:
                    size.weights += spec.bias.nbytes
    return size
