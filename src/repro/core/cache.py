"""Tiling memoization: skip the DORY search when the answer is known.

The tiling solver (:class:`~repro.dory.tiler.DoryTiler`) is exact but
exhaustive: for every offloaded layer it walks a pruned ``(c_t, k_t)``
candidate grid and binary-searches the feasible output-height frontier.
The search is *deterministic*: its result depends only on

* the layer geometry (a :class:`~repro.dory.layer_spec.LayerSpec`
  minus its constant payloads — weights never influence tile shapes),
* the accelerator target,
* the heuristic set (each ``beta_i * H_i`` term, identified by name
  and weight),
* the Eq. 1 ``alpha`` weight and the Eq. 2 ``l1_budget``,
* the digital weight-memory capacity (the only platform constant the
  feasibility check reads besides the L1 budget).

:class:`TilingCache` memoizes ``solve`` on exactly that key, so a warm
compile performs zero searches: identical layers within one model, the
same model re-compiled, and every (model, config) cell of a sweep that
repeats a layer geometry all hit. Infeasible outcomes
(:class:`~repro.errors.TilingError`) are cached too — the Fig. 4
budget sweep spends much of its time re-discovering infeasibility.

An optional JSON-backed persistent layer (``path=``) lets repeated CLI
or benchmark invocations skip the search across processes. Only the
chosen tile configuration and its memory accounting are stored; on a
hit the :class:`~repro.dory.tiling_types.TilingSolution` is rebuilt
around the *caller's* spec, so constant payloads are never serialized
and never stale.

The cache is thread-safe (the ``jobs=N`` evaluation fan-out shares
one), and a process-wide default instance is threaded through
:func:`~repro.core.compiler.compile_model` via
``CompilerConfig.tiling_cache``.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import tempfile
import threading
from typing import Dict, Optional, Sequence, Tuple

from ..dory.heuristics import Heuristic
from ..dory.layer_spec import LayerSpec
from ..dory.tiler import DoryTiler
from ..dory.tiling_types import TileConfig, TilingSolution
from ..errors import TilingError

#: LayerSpec fields that influence the tiling search. ``name``,
#: ``weight`` and ``bias`` are deliberately excluded: two layers with
#: identical geometry share a tiling regardless of their payloads, which
#: is what makes intra-model hits (e.g. ResNet's repeated blocks) work.
_SPEC_KEY_FIELDS = (
    "kind", "in_channels", "out_channels", "iy", "ix", "oy", "ox",
    "fy", "fx", "strides", "padding", "groups",
    "weight_dtype", "in_dtype", "out_dtype",
)


def spec_key(spec: LayerSpec) -> Tuple:
    """Canonical geometry fingerprint of one layer."""
    return tuple(
        tuple(v) if isinstance(v, (list, tuple)) else v
        for v in (getattr(spec, f) for f in _SPEC_KEY_FIELDS)
    )


def heuristics_key(heuristics: Sequence[Heuristic]) -> Tuple:
    """Identity of a heuristic set: ordered ``(name, weight)`` pairs.

    Custom heuristics reusing a built-in name *and* weight with a
    different scoring function would collide; give them a fresh name.
    """
    return tuple((h.name, float(h.weight)) for h in heuristics)


def tiling_key(tiler: DoryTiler, spec: LayerSpec) -> Tuple:
    """The full memoization key for ``tiler.solve(spec)``."""
    return (
        spec_key(spec),
        tiler.target,
        heuristics_key(tiler.heuristics),
        float(tiler.alpha),
        int(tiler.l1_budget),
        int(tiler.params.dig_weight_bytes),
    )


def _freeze(obj):
    """Recursively turn JSON lists back into hashable tuples."""
    if isinstance(obj, list):
        return tuple(_freeze(v) for v in obj)
    return obj


class TilingCache:
    """Memoizes :meth:`DoryTiler.solve` results, with hit/miss counters.

    Args:
        path: optional JSON file backing the cache across processes.
            Loaded (if present) at construction; new entries are
            persisted in batches (plus a flush at interpreter exit),
            since each save rewrites the whole snapshot — call
            :meth:`flush` for a deterministic write point.
        autosave: persist automatically as entries accumulate.
        autosave_batch: write at most one snapshot per this many new
            entries (1 = write on every miss).
    """

    def __init__(self, path: Optional[str] = None, autosave: bool = True,
                 autosave_batch: int = 32):
        self._lock = threading.Lock()
        self._save_lock = threading.Lock()  # keeps snapshots file-ordered
        self._entries: Dict[Tuple, dict] = {}
        self._dirty = 0
        self.hits = 0
        self.misses = 0
        self.path = path
        self.autosave = autosave
        self.autosave_batch = max(1, int(autosave_batch))
        if path and os.path.exists(path):
            self.load(path)
        if path:
            atexit.register(self.flush)

    # -- core --------------------------------------------------------------

    def solve(self, tiler: DoryTiler, spec: LayerSpec) -> TilingSolution:
        """``tiler.solve(spec)``, memoized.

        On a hit the stored tile configuration is re-wrapped around the
        caller's ``spec`` (payloads included); cached infeasibility
        re-raises :class:`TilingError`.
        """
        key = tiling_key(tiler, spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
        if entry is not None:
            return self._rebuild(entry, spec, tiler.target)

        try:
            sol = tiler.solve(spec)
        except TilingError:
            with self._lock:
                self.misses += 1
                self._entries[key] = {"infeasible": True}
            self._maybe_save()
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = {
                "cfg": [sol.cfg.c_t, sol.cfg.k_t, sol.cfg.oy_t, sol.cfg.ox_t],
                "l1": [sol.l1_in_bytes, sol.l1_out_bytes,
                       sol.l1_weight_bytes],
                "objective": sol.objective,
                "needs_tiling": sol.needs_tiling,
            }
        self._maybe_save()
        return sol

    @staticmethod
    def _rebuild(entry: dict, spec: LayerSpec, target: str) -> TilingSolution:
        if entry.get("infeasible"):
            raise TilingError(
                f"{spec.name}: no feasible tiling for target {target} "
                f"(cached infeasibility)")
        c_t, k_t, oy_t, ox_t = entry["cfg"]
        in_b, out_b, w_b = entry["l1"]
        return TilingSolution(
            spec=spec, cfg=TileConfig(c_t=c_t, k_t=k_t, oy_t=oy_t, ox_t=ox_t),
            target=target, l1_in_bytes=in_b, l1_out_bytes=out_b,
            l1_weight_bytes=w_b, objective=entry["objective"],
            needs_tiling=entry["needs_tiling"],
        )

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """``{"hits": ..., "misses": ..., "entries": ...}``."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}

    def reset_counters(self):
        with self._lock:
            self.hits = 0
            self.misses = 0

    def clear(self):
        """Drop all entries (counters included)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    # -- persistence -------------------------------------------------------

    def _maybe_save(self):
        if not (self.path and self.autosave):
            return
        with self._lock:
            self._dirty += 1
            due = self._dirty >= self.autosave_batch
        if due:
            try:
                self.save()
            except OSError as exc:
                # the cache is a performance layer: losing persistence
                # must never fail a compile. Warn once and stop trying.
                self.autosave = False
                print(f"warning: tiling cache not persisted to "
                      f"{self.path}: {exc}", file=sys.stderr)

    def flush(self):
        """Persist any unsaved entries (no-op without a path/changes)."""
        with self._lock:
            dirty = self._dirty
        if self.path and dirty:
            try:
                self.save()
            except OSError as exc:
                print(f"warning: tiling cache not persisted to "
                      f"{self.path}: {exc}", file=sys.stderr)

    def save(self, path: Optional[str] = None):
        """Atomically write all entries as ``{key, entry}`` records.

        The snapshot goes to a uniquely-named temporary file in the
        target directory and is moved into place with :func:`os.replace`,
        so a reader (or a concurrent writer in another process or
        another cache instance of this process) never observes a
        partially-written or interleaved file — the worst outcome of a
        concurrent flush race is last-writer-wins on a *complete*
        snapshot, which :meth:`load` tolerates by design.
        """
        path = path or self.path
        if not path:
            raise ValueError("TilingCache has no backing path")
        # serialize whole snapshots: without this, a writer holding an
        # older (smaller) snapshot could replace the file after a newer
        # one and drop entries
        with self._save_lock:
            with self._lock:
                records = [{"key": list(k), "entry": e}
                           for k, e in self._entries.items()]
                in_snapshot = self._dirty
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump({"version": 1, "entries": records}, f)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            with self._lock:
                # entries added during the write stay dirty
                self._dirty -= min(in_snapshot, self._dirty)

    def load(self, path: str):
        """Merge entries from a JSON file written by :meth:`save`.

        A corrupt or unreadable file is treated as a cold cache (with a
        warning): persisted tilings are disposable by design.
        """
        try:
            with open(path) as f:
                payload = json.load(f)
            loaded = {_freeze(rec["key"]): rec["entry"]
                      for rec in payload.get("entries", [])}
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            # a corrupt/truncated/alien file must never fail a compile:
            # start cold instead (the cache is a performance layer)
            print(f"warning: ignoring unreadable tiling cache {path}: "
                  f"{exc}", file=sys.stderr)
            return
        with self._lock:
            self._entries.update(loaded)


# -- process-wide default ----------------------------------------------------

_default_cache: Optional[TilingCache] = TilingCache()


def get_default_cache() -> Optional[TilingCache]:
    """The cache ``compile_model`` uses by default (None = disabled)."""
    return _default_cache


def set_default_cache(cache: Optional[TilingCache]) -> Optional[TilingCache]:
    """Swap the process-wide cache (pass None to disable); returns it."""
    global _default_cache
    _default_cache = cache
    return cache
