"""Compiler configurations for the deployment scenarios of Table I."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Optional

#: config fields that do not influence compilation *results* — memo or
#: checking knobs may differ between two runs that still produce
#: byte-identical deployments, so they are excluded from the fingerprint.
_NON_SEMANTIC_FIELDS = ("tiling_cache", "verify_passes")


@dataclass(frozen=True)
class CompilerConfig:
    """Knobs of one compilation flow.

    Attributes:
        name: configuration label used in reports.
        offload: run the pattern matcher + dispatcher (HTVM) or keep
            everything on the CPU (plain TVM baseline).
        buffer_reuse: lifetime-based L2 planning (HTVM) vs. naive
            per-tensor allocation (plain TVM baseline — this is what
            makes MobileNet go OoM in Table I).
        heuristics: tiling heuristic set — ``"full"`` (Eqs. 3-5),
            ``"pe-only"`` (Eqs. 3-4) or ``"none"`` (baseline tiler).
        alpha: memory-utilization weight of the tiling objective (Eq. 1).
        l1_budget: Eq. 2 budget override in bytes (None = platform L1).
        runtime: ``"htvm"`` or ``"tvm"`` runtime footprint.
        check_l2: raise OutOfMemoryError when image + arena exceed L2.
        tiling_cache: memoize DORY tiling solutions through the
            process-wide :class:`~repro.core.cache.TilingCache` (the
            solver is deterministic per key, so this is safe; see
            docs/COSTMODEL.md). Disable to force a fresh search.
        mapping_strategy: how composite targets are chosen —
            ``"rules"`` (the weight-dtype policy, bit-exact with the
            seed dispatcher), ``"greedy"`` (cheapest candidate per
            layer) or ``"dp"`` (global cost-driven search with
            inter-layer transfer penalties). See
            :mod:`repro.mapping.engine`.
        mapping_objective: what cost-driven strategies minimize —
            ``"latency"``, ``"energy"`` or ``"weighted"``.
        mapping_weight: latency/energy trade-off of the ``"weighted"``
            objective (0 = pure latency, 1 = pure energy).
        mapping_beam_width: beam width of the global search on
            branching graphs (linear chains are solved exactly).
        platform: name of the registered platform this config compiles
            for (see :mod:`repro.soc.registry`). Semantic: it selects
            the accelerator set and calibration constants, so it flows
            into the fingerprint — except for the stock ``"diana"``
            default, which is omitted from the payload to keep every
            historical fingerprint (serving keys, ``.dna`` stamps,
            native cache entries) byte-identical.
        depthfirst: depth-first (patch-based, MCUNetV2-style) fused
            schedules for conv chains — ``"off"`` (default, the
            historical layer-by-layer flow), ``"auto"`` (fuse chains
            only when the layer-by-layer activation arena exceeds the
            L2 budget: an out-of-memory rescue) or ``"on"`` (fuse every
            eligible chain; benchmark/DSE mode). See
            :mod:`repro.extensions.depthfirst` and docs/DEPTHFIRST.md.
        verify_passes: run the static graph verifier after every
            transform and the memory/plan verifiers on the finished
            compile, raising
            :class:`~repro.errors.VerificationError` naming the
            offending stage (see :mod:`repro.verify` and
            docs/CHECKS.md). Off by default: checking is O(graph) per
            pass. Non-semantic: does not change the emitted deployment
            or the config fingerprint.
    """

    name: str = "htvm"
    offload: bool = True
    buffer_reuse: bool = True
    heuristics: str = "full"
    alpha: float = 1.0
    l1_budget: Optional[int] = None
    runtime: str = "htvm"
    check_l2: bool = True
    tiling_cache: bool = True
    mapping_strategy: str = "rules"
    mapping_objective: str = "latency"
    mapping_weight: float = 0.5
    mapping_beam_width: int = 8
    platform: str = "diana"
    depthfirst: str = "off"
    verify_passes: bool = False

    def with_overrides(self, **kwargs) -> "CompilerConfig":
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable hex digest of every compilation-semantic knob.

        Two configs with equal fingerprints compile any graph to
        byte-identical deployments (memoization-only knobs such as
        ``tiling_cache`` are excluded). Used to key the serving
        registry and to stamp ``.dna`` artifacts so a stale artifact
        is never served for a differently-configured compile.
        """
        fields = {k: v for k, v in sorted(asdict(self).items())
                  if k not in _NON_SEMANTIC_FIELDS}
        # the stock platform predates the platform knob: omit it from
        # the payload so historical diana fingerprints stay byte-exact
        if fields.get("platform") == "diana":
            del fields["platform"]
        payload = json.dumps(fields, sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()


#: Plain TVM deployment: CPU-only kernels, no planning (Table I "TVM").
TVM_CPU = CompilerConfig(
    name="tvm-cpu", offload=False, buffer_reuse=False, runtime="tvm",
)

#: The full HTVM flow (Table I "HTVM" columns).
HTVM = CompilerConfig(name="htvm")

#: HTVM with the hardware-agnostic baseline tiler (Fig. 4 round markers).
HTVM_NAIVE_TILING = CompilerConfig(name="htvm-naive-tiling", heuristics="none")
